package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/appmult/retrain/internal/obs"
)

// TestMetricsEndpoint is the observability acceptance gate: /metrics
// on a serving mux must expose the process-wide registry — serving
// series for the loaded model plus the nn kernel and tensor pool
// series the model's warm-up already exercised — as valid Prometheus
// text, with at least 15 distinct series, while /statz keeps its
// original JSON shape (covered by TestHTTPIntrospection).
func TestMetricsEndpoint(t *testing.T) {
	_, ts, m := newTestServer(t)

	// Serve one request so the model's serving series have data.
	img := make([]float32, m.ImageLen())
	if resp, body := postPredict(t, ts.URL, PredictRequest{Image: img}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}

	distinct := map[string]bool{}
	for _, s := range samples {
		distinct[s.Key()] = true
	}
	if len(distinct) < 15 {
		t.Errorf("/metrics exposes %d distinct series, want >= 15:\n%s", len(distinct), body)
	}

	// Every layer of the stack must be represented.
	for _, want := range []string{"serve_", "nn_kernel_", "tensor_pool_"} {
		found := false
		for _, s := range samples {
			if strings.HasPrefix(s.Name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics has no %s* series", want)
		}
	}
	for name, kind := range map[string]obs.Kind{
		"serve_requests_total":     obs.KindCounter,
		"serve_request_latency_ms": obs.KindHistogram,
		"serve_batch_size":         obs.KindHistogram,
		"serve_queue_depth":        obs.KindGauge,
		"nn_kernel_dispatch_total": obs.KindCounter,
		"tensor_pool_jobs_total":   obs.KindCounter,
	} {
		if types[name] != kind {
			t.Errorf("metric %s has TYPE %q, want %q", name, types[name], kind)
		}
	}

	// The model's completed counter reflects the request served above,
	// and a table/closed-form forward kernel tier ran during
	// warm-up/inference. Which tier depends on the host (arith needs
	// AVX2), so count every non-behavioral forward path.
	var completed, fwdKernel float64
	for _, s := range samples {
		switch {
		case s.Name == "serve_requests_total" &&
			s.Label("model") == m.Spec().Name && s.Label("outcome") == "completed":
			completed = s.Value
		case s.Name == "nn_kernel_dispatch_total" && s.Label("kernel") == "forward":
			switch s.Label("path") {
			case "arith", "packed16", "blocked":
				fwdKernel += s.Value
			}
		}
	}
	if completed < 1 {
		t.Error("serve_requests_total{outcome=completed} not incremented")
	}
	if fwdKernel < 1 {
		t.Error("nn_kernel_dispatch_total{kernel=forward} has no arith/packed16/blocked increments")
	}
}

// TestMetricsMirrorsStatz pins the facade contract: every event the
// sliding-window Stats snapshot counts must land identically in the
// registry counters.
func TestMetricsMirrorsStatz(t *testing.T) {
	mm := NewMetrics("mirror-test")
	mm.Complete(3 * time.Millisecond)
	mm.Complete(7 * time.Millisecond)
	mm.Reject()
	mm.Expire()
	mm.Fail()
	mm.Batch(2)

	st := mm.Snapshot()
	if st.Completed != 2 || st.Rejected != 1 || st.Expired != 1 || st.Failed != 1 || st.Batches != 1 {
		t.Fatalf("statz snapshot wrong: %+v", st)
	}
	if got := mm.completedC.Value(); got != float64(st.Completed) {
		t.Errorf("registry completed = %v, statz %d", got, st.Completed)
	}
	if got := mm.rejectedC.Value(); got != float64(st.Rejected) {
		t.Errorf("registry rejected = %v, statz %d", got, st.Rejected)
	}
	h := mm.latencyH.Snapshot()
	if h.Count != st.Completed {
		t.Errorf("latency histogram count = %d, statz completed %d", h.Count, st.Completed)
	}
	if h.Sum < 9.9 || h.Sum > 10.1 {
		t.Errorf("latency histogram sum = %v ms, want ~10", h.Sum)
	}
}
