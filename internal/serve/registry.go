// Package serve is the batched inference serving subsystem: it loads
// trained approximate models (TRCKPv1 checkpoints plus an AppMult
// product LUT and quantization calibration) into read-only inference
// replicas, coalesces concurrent single-image requests into
// GEMM-friendly micro-batches, and fronts everything with an HTTP JSON
// API with admission control, per-request deadlines, graceful drain,
// and latency/throughput/batch-size metrics. It is the first layer
// that turns the retraining reproduction into a servable system.
package serve

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/models"
	"github.com/appmult/retrain/internal/nn"
	"github.com/appmult/retrain/internal/tensor"
	"github.com/appmult/retrain/internal/train"
)

// Spec describes one model to serve. Kind/Classes/InputHW/Width/Mult
// must match the configuration the checkpoint was trained with — the
// checkpoint loader verifies parameter layout and refuses mismatches.
type Spec struct {
	// Name is the identifier clients use in /v1/predict.
	Name string `json:"name"`
	// Kind is the architecture: lenet|vgg11|vgg16|vgg19|resnet18|resnet34|resnet50.
	Kind string `json:"kind"`
	// Classes is the classifier width.
	Classes int `json:"classes"`
	// InputHW is the (square) input resolution; channels are fixed at 3.
	InputHW int `json:"input_hw"`
	// Width is the channel-width multiplier (1.0 = paper scale).
	Width float64 `json:"width"`
	// Mult is the approximate multiplier's registry name (see
	// cmd/amchar); empty selects the accurate 8-bit multiplier.
	Mult string `json:"multiplier"`
	// Ckpt is an optional TRCKPv1 training checkpoint to restore
	// parameters, batch-norm statistics, and quantization calibration
	// from. Empty serves a freshly initialized model (useful for load
	// testing).
	Ckpt string `json:"-"`
	// Replicas is the number of independent model copies serving
	// batches concurrently (default 1).
	Replicas int `json:"replicas"`
	// MaxReplicas bounds how far AddReplica (the fleet autoscaler) may
	// grow the pool (default 4*Replicas, at least 8).
	MaxReplicas int `json:"max_replicas"`
	// MaxBatch caps the coalesced batch size (default 8).
	MaxBatch int `json:"max_batch"`
	// MaxDelay is the micro-batching window (default 2ms).
	MaxDelay time.Duration `json:"-"`
	// QueueDepth bounds the admission queue (default 4*MaxBatch).
	QueueDepth int `json:"queue_depth"`
	// Seed drives initialization when no checkpoint is given.
	Seed int64 `json:"-"`
}

var servableKinds = map[string]bool{
	"lenet": true, "vgg11": true, "vgg16": true, "vgg19": true,
	"resnet18": true, "resnet34": true, "resnet50": true,
}

func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "default"
	}
	if s.Classes == 0 {
		s.Classes = 10
	}
	if s.InputHW == 0 {
		s.InputHW = 16
	}
	if s.Width == 0 {
		s.Width = 0.125
	}
	if s.Replicas < 1 {
		s.Replicas = 1
	}
	if s.MaxReplicas < s.Replicas {
		s.MaxReplicas = 4 * s.Replicas
		if s.MaxReplicas < 8 {
			s.MaxReplicas = 8
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Model is one servable model: a batcher over inference replicas plus
// its metrics. The base model and op are retained so AddReplica can
// mint further warm replicas after load — the fleet autoscaler's
// scale-up path.
type Model struct {
	spec     Spec
	batcher  *Batcher
	metrics  *Metrics
	base     *nn.Sequential
	op       *nn.Op
	maxBatch int
}

// Spec returns the (defaulted) spec the model was loaded from.
func (m *Model) Spec() Spec { return m.spec }

// Batcher returns the model's request queue.
func (m *Model) Batcher() *Batcher { return m.batcher }

// Metrics returns the model's serving metrics.
func (m *Model) Metrics() *Metrics { return m.metrics }

// ImageLen returns the flattened input size clients must send.
func (m *Model) ImageLen() int { return 3 * m.spec.InputHW * m.spec.InputHW }

// Load builds a servable model: construct the architecture with the
// multiplier's product LUT, restore the checkpoint if given, replicate
// into independent read-only inference copies, warm each replica (so
// scratch arenas are sized and, for un-checkpointed models, activation
// observers are calibrated once up front — after warm-up no request
// mutates replica state), and start the micro-batching queue.
func Load(spec Spec) (*Model, error) {
	spec = spec.withDefaults()
	if !servableKinds[spec.Kind] {
		return nil, fmt.Errorf("serve: unknown model kind %q", spec.Kind)
	}
	op, err := opFor(spec.Mult)
	if err != nil {
		return nil, err
	}

	sc := train.Scale{HW: spec.InputHW, Width: spec.Width}
	base := train.BuildModel(spec.Kind, spec.Classes, sc, models.ApproxConv(op), spec.Seed)
	if spec.Ckpt != "" {
		if _, err := train.LoadCheckpoint(spec.Ckpt, base); err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", spec.Ckpt, err)
		}
	}

	maxBatch := BatcherConfig{MaxBatch: spec.MaxBatch}.withDefaults().MaxBatch
	reps := models.Replicas(base, op, spec.Replicas)
	runners := make([]Runner, len(reps))
	for i, r := range reps {
		rep := &replica{model: r, hw: spec.InputHW, classes: spec.Classes}
		rep.warm(maxBatch, spec.Seed)
		runners[i] = rep
	}

	metrics := NewMetrics(spec.Name)
	b := NewBatcher(runners, BatcherConfig{
		MaxBatch:   spec.MaxBatch,
		MaxDelay:   spec.MaxDelay,
		QueueDepth: spec.QueueDepth,
		MaxRunners: spec.MaxReplicas,
	}, metrics)
	return &Model{spec: spec, batcher: b, metrics: metrics,
		base: base, op: op, maxBatch: maxBatch}, nil
}

// AddReplica builds, warms, and registers one more inference replica —
// the scale-up primitive the fleet autoscaler drives. It fails once
// the pool holds Spec.MaxReplicas runners or the batcher is draining.
func (m *Model) AddReplica() error {
	rep := &replica{model: models.Replicas(m.base, m.op, 1)[0],
		hw: m.spec.InputHW, classes: m.spec.Classes}
	rep.warm(m.maxBatch, m.spec.Seed)
	return m.batcher.AddRunner(rep)
}

// RemoveReplica retires one idle replica, reporting whether one was
// removed (false when only one remains or all are mid-batch).
func (m *Model) RemoveReplica() bool { return m.batcher.RemoveRunner() }

// Replicas returns the number of replicas currently registered.
func (m *Model) Replicas() int { return m.batcher.Runners() }

// opFor resolves a multiplier registry name (empty selects the accurate
// 8-bit multiplier) into an approximate-product Op. Inference only runs
// the forward LUT; STE gradient tables are the cheapest valid backward
// bundle and are never gathered by Predict.
func opFor(multName string) (*nn.Op, error) {
	if multName == "" {
		multName = "mul8u_acc"
	}
	entry, ok := appmult.Lookup(multName)
	if !ok {
		return nil, fmt.Errorf("serve: unknown multiplier %q", multName)
	}
	return nn.STEOp(entry.Mult), nil
}

// replica wraps one independent model copy with its reusable input
// batch buffer. The batcher guarantees a replica runs one batch at a
// time, which is exactly the single-stream discipline nn layers
// require.
type replica struct {
	model   *nn.Sequential
	in      *tensor.Tensor
	hw      int
	classes int
}

// warm runs one full-size batch through the replica: it sizes every
// scratch arena at the serving batch size and calibrates the
// activation observers of un-checkpointed models, so no later request
// allocates large buffers or mutates observer state.
func (r *replica) warm(maxBatch int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r.in = tensor.Ensure(r.in, maxBatch, 3, r.hw, r.hw)
	r.in.RandNormal(rng, 1)
	r.model.Predict(r.in)
}

// Run implements Runner.
func (r *replica) Run(images [][]float32) ([][]float32, error) {
	n := len(images)
	chw := 3 * r.hw * r.hw
	r.in = tensor.Ensure(r.in, n, 3, r.hw, r.hw)
	for i, img := range images {
		if len(img) != chw {
			return nil, fmt.Errorf("serve: image %d has %d values, want %d", i, len(img), chw)
		}
		copy(r.in.Data[i*chw:(i+1)*chw], img)
	}
	out := r.model.Predict(r.in)
	if len(out.Shape) != 2 || out.Shape[0] != n || out.Shape[1] != r.classes {
		return nil, fmt.Errorf("serve: model produced %v, want (%d,%d)", out.Shape, n, r.classes)
	}
	// The output tensor is owned by the model's final layer; copy the
	// rows out before the next batch overwrites them.
	scores := make([][]float32, n)
	for i := range scores {
		scores[i] = append([]float32(nil), out.Data[i*r.classes:(i+1)*r.classes]...)
	}
	return scores, nil
}
