package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/appmult/retrain/internal/models"
	"github.com/appmult/retrain/internal/nn"
	"github.com/appmult/retrain/internal/optim"
	"github.com/appmult/retrain/internal/tensor"
	"github.com/appmult/retrain/internal/train"
)

// testSpec is small enough to load in well under a second.
func testSpec(name string) Spec {
	return Spec{
		Name: name, Kind: "lenet", Classes: 3, InputHW: 8, Width: 0.08,
		MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 1, Seed: 7,
	}
}

func TestLoadRejectsBadSpecs(t *testing.T) {
	if _, err := Load(Spec{Kind: "alexnet"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Load(Spec{Kind: "lenet", Mult: "no_such_mult"}); err == nil {
		t.Error("unknown multiplier accepted")
	}
	if _, err := Load(Spec{Kind: "lenet", Classes: 3, InputHW: 8, Width: 0.08,
		Ckpt: filepath.Join(t.TempDir(), "missing.ckpt")}); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestLoadRestoresCheckpoint trains nothing but saves a freshly seeded
// model under one seed and loads it into a serve model built under a
// different seed: predictions must come from the checkpoint, i.e. match
// a direct Predict on the saved model bit-for-bit.
func TestLoadRestoresCheckpoint(t *testing.T) {
	spec := testSpec("ckpt")
	ref, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Build the source the way Load does and run the same warm-up, so the
	// checkpoint carries calibrated activation observers; the restored
	// model's own warm-up then leaves them untouched.
	src := train.BuildModel(spec.Kind, spec.Classes, train.Scale{HW: spec.InputHW, Width: spec.Width},
		models.ApproxConv(mustOp(t, "mul8u_acc")), spec.Seed)
	warm := tensor.New(spec.MaxBatch, 3, spec.InputHW, spec.InputHW)
	warm.RandNormal(rand.New(rand.NewSource(spec.Seed)), 1)
	src.Predict(warm)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	st := train.CheckpointState{Seed: spec.Seed, Adam: optim.NewAdam().Snapshot(src.Params())}
	if err := train.SaveCheckpoint(path, src, st); err != nil {
		t.Fatal(err)
	}

	other := spec
	other.Name = "restored"
	other.Seed = 999 // different init — the checkpoint must win
	other.Ckpt = path
	got, err := Load(other)
	if err != nil {
		t.Fatal(err)
	}

	img := make([]float32, got.ImageLen())
	for i := range img {
		img[i] = float32(math.Sin(float64(i)))
	}
	want := predictOne(t, ref, img)
	have := predictOne(t, got, img)
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(have[i]) {
			t.Fatalf("restored model diverges at class %d: %v vs %v", i, have[i], want[i])
		}
	}
}

func mustOp(t *testing.T, name string) *nn.Op {
	t.Helper()
	op, err := opFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func predictOne(t *testing.T, m *Model, img []float32) []float32 {
	t.Helper()
	res := m.Batcher().Do(context.Background(), img, time.Time{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Scores
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, *Model) {
	t.Helper()
	m, err := Load(testSpec("lenet-test"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, m
}

func postPredict(t *testing.T, url string, req PredictRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPPredict(t *testing.T) {
	_, ts, m := newTestServer(t)
	img := make([]float32, m.ImageLen())
	for i := range img {
		img[i] = float32(i%7)/7 - 0.5
	}

	// Model name may be omitted when only one model is served.
	resp, body := postPredict(t, ts.URL, PredictRequest{Image: img})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Scores) != 3 || pr.Label < 0 || pr.Label > 2 {
		t.Fatalf("bad response: %+v", pr)
	}
	if pr.BatchSize < 1 || pr.TotalMS <= 0 {
		t.Errorf("missing serving metadata: %+v", pr)
	}
	for i, v := range pr.Scores {
		if v > pr.Scores[pr.Label] {
			t.Errorf("label %d is not argmax (class %d scores higher)", pr.Label, i)
		}
	}

	cases := []struct {
		name string
		req  PredictRequest
		want int
	}{
		{"wrong image length", PredictRequest{Model: "lenet-test", Image: img[:5]}, http.StatusBadRequest},
		{"unknown model", PredictRequest{Model: "nope", Image: img}, http.StatusNotFound},
		{"empty image", PredictRequest{Model: "lenet-test"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp, body := postPredict(t, ts.URL, c.req); resp.StatusCode != c.want {
			t.Errorf("%s: got %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
	}

	// GET is not allowed on the predict route.
	resp2, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: got %d, want 405", resp2.StatusCode)
	}
}

func TestHTTPIntrospection(t *testing.T) {
	_, ts, m := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	var ml struct {
		Models []struct {
			Name     string `json:"name"`
			Kind     string `json:"kind"`
			ImageLen int    `json:"image_len"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &ml)
	if len(ml.Models) != 1 || ml.Models[0].Name != "lenet-test" ||
		ml.Models[0].Kind != "lenet" || ml.Models[0].ImageLen != m.ImageLen() {
		t.Errorf("models listing: %+v", ml)
	}

	// Serve one request so statz has counters.
	img := make([]float32, m.ImageLen())
	if resp, body := postPredict(t, ts.URL, PredictRequest{Image: img}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var stz struct {
		UptimeS float64          `json:"uptime_s"`
		Models  map[string]Stats `json:"models"`
	}
	getJSON(t, ts.URL+"/statz", &stz)
	st, ok := stz.Models["lenet-test"]
	if !ok || st.Completed < 1 || st.Batches < 1 || st.MeanBatch < 1 || st.P99Ms <= 0 {
		t.Errorf("statz: %+v", stz)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDrain is the serving-layer half of graceful shutdown: after
// Drain, healthz flips to 503 and predictions are refused, while the
// drain itself completes cleanly with no traffic in flight.
func TestHTTPDrain(t *testing.T) {
	s, ts, m := newTestServer(t)
	img := make([]float32, m.ImageLen())
	if resp, body := postPredict(t, ts.URL, PredictRequest{Image: img}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain predict: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Error("server not marked draining")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postPredict(t, ts.URL, PredictRequest{Image: img}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict after drain: %d, want 503", resp.StatusCode)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(); err == nil {
		t.Error("empty server accepted")
	}
	m, err := Load(testSpec("dup"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher().Drain(context.Background())
	if _, err := NewServer(m, m); err == nil {
		t.Error("duplicate model names accepted")
	}
}
