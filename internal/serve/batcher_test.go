package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubRunner echoes each image's first value as its score and records
// the batch sizes it served. An optional gate blocks Run until released,
// letting tests pin the replica "busy" deterministically.
type stubRunner struct {
	mu      sync.Mutex
	batches []int
	entered chan struct{} // when non-nil, receives once per Run entry
	gate    chan struct{} // when non-nil, Run blocks until it can receive
	fail    error
	panics  bool
}

func (s *stubRunner) Run(images [][]float32) ([][]float32, error) {
	if s.entered != nil {
		select {
		case s.entered <- struct{}{}:
		default:
		}
	}
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	s.batches = append(s.batches, len(images))
	s.mu.Unlock()
	if s.panics {
		panic("stub runner poisoned")
	}
	if s.fail != nil {
		return nil, s.fail
	}
	out := make([][]float32, len(images))
	for i, img := range images {
		out[i] = []float32{img[0]}
	}
	return out, nil
}

func (s *stubRunner) batchSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.batches...)
}

func TestBatcherCoalescesAndRoutes(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 8, MaxDelay: 20 * time.Millisecond, QueueDepth: 32}, nil)
	defer b.Drain(context.Background())

	const n = 8
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.Do(context.Background(), []float32{float32(i)}, time.Time{})
		}(i)
	}
	// Feed the gate until every request is answered: the first batch may
	// catch only the earliest arrivals, the next sweeps the rest.
	stopFeed := make(chan struct{})
	go func() {
		for {
			select {
			case r.gate <- struct{}{}:
			case <-stopFeed:
				return
			}
		}
	}()
	wg.Wait()
	close(stopFeed)

	maxBatch := 0
	for _, bs := range r.batchSizes() {
		if bs > maxBatch {
			maxBatch = bs
		}
	}
	if maxBatch < 2 {
		t.Errorf("no coalescing: batch sizes %v", r.batchSizes())
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if len(res.Scores) != 1 || res.Scores[0] != float32(i) {
			t.Errorf("request %d got scores %v, want [%d] (misrouted)", i, res.Scores, i)
		}
		if res.BatchSize < 1 {
			t.Errorf("request %d reports batch size %d", i, res.BatchSize)
		}
	}
	st := b.Metrics().Snapshot()
	if st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
	if st.MeanBatch <= 1 && maxBatch > 1 {
		t.Errorf("mean batch %v inconsistent with observed sizes %v", st.MeanBatch, r.batchSizes())
	}
}

// occupy blocks the gated runner with one request and waits until that
// request has entered Run, so subsequent submissions interact with a
// deterministically busy batcher. Returns a wait function for the
// occupying request.
func occupy(t *testing.T, b *Batcher, r *stubRunner) (done func() Result) {
	t.Helper()
	ch := make(chan Result, 1)
	go func() { ch <- b.Do(context.Background(), []float32{-1}, time.Time{}) }()
	select {
	case <-r.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("occupying request never reached the runner")
	}
	return func() Result { return <-ch }
}

func TestBatcherOverloadRejects(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 2}, nil)

	wait := occupy(t, b, r)
	// Fill the queue to its depth, then one more must bounce.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Do(context.Background(), []float32{0}, time.Time{})
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(b.queue) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res := b.Do(context.Background(), []float32{0}, time.Time{})
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("overflow request got %v, want ErrOverloaded", res.Err)
	}
	if st := b.Metrics().Snapshot(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	close(r.gate) // release everything
	wait()
	wg.Wait()
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBatcherDeadlineWhileQueued(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 8}, nil)

	wait := occupy(t, b, r)
	ch := make(chan Result, 1)
	go func() {
		ch <- b.Do(context.Background(), []float32{1}, time.Now().Add(10*time.Millisecond))
	}()
	time.Sleep(30 * time.Millisecond) // let the deadline lapse while queued
	close(r.gate)
	if res := <-ch; !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("stale request got %v, want ErrDeadlineExceeded", res.Err)
	}
	if res := wait(); res.Err != nil {
		t.Fatalf("occupying request failed: %v", res.Err)
	}
	if st := b.Metrics().Snapshot(); st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestBatcherGracefulDrain is the shutdown contract: requests in flight
// or already queued when Drain begins complete normally; requests
// submitted after Drain begins are rejected with ErrDraining.
func TestBatcherGracefulDrain(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 16}, nil)

	wait := occupy(t, b, r)
	const queued = 3
	pending := make(chan Result, queued)
	for i := 0; i < queued; i++ {
		go func() { pending <- b.Do(context.Background(), []float32{2}, time.Time{}) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(b.queue) < queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- b.Drain(context.Background()) }()
	// Wait for Drain to flip admission (its first action), then new
	// submissions must bounce immediately.
	for {
		b.mu.RLock()
		d := b.draining
		b.mu.RUnlock()
		if d {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("Drain never flipped the draining flag")
		}
		time.Sleep(time.Millisecond)
	}
	if res := b.Do(context.Background(), []float32{3}, time.Time{}); !errors.Is(res.Err, ErrDraining) {
		t.Fatalf("post-drain submission got %v, want ErrDraining", res.Err)
	}

	close(r.gate) // let the in-flight batch and the queued jobs run
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res := wait(); res.Err != nil {
		t.Errorf("in-flight request failed during drain: %v", res.Err)
	}
	for i := 0; i < queued; i++ {
		if res := <-pending; res.Err != nil {
			t.Errorf("queued request failed during drain: %v", res.Err)
		}
	}
	// Drain is idempotent.
	if err := b.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestBatcherDrainTimeoutFailsQueued(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 8}, nil)

	wait := occupy(t, b, r)
	queuedRes := make(chan Result, 1)
	go func() { queuedRes <- b.Do(context.Background(), []float32{4}, time.Time{}) }()
	deadline := time.Now().Add(2 * time.Second)
	for len(b.queue) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
	// The queued job must have been answered, not abandoned.
	if res := <-queuedRes; !errors.Is(res.Err, ErrDraining) {
		t.Fatalf("queued request got %v, want ErrDraining", res.Err)
	}
	close(r.gate) // in-flight batch still completes on its own
	if res := wait(); res.Err != nil {
		t.Errorf("in-flight request failed: %v", res.Err)
	}
}

func TestBatcherRunnerPanicIsContained(t *testing.T) {
	r := &stubRunner{panics: true}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond}, nil)

	res := b.Do(context.Background(), []float32{5}, time.Time{})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("got %v, want inference-panicked error", res.Err)
	}
	// The dispatcher survives and keeps serving.
	r.panics = false
	if res := b.Do(context.Background(), []float32{6}, time.Time{}); res.Err != nil {
		t.Fatalf("batcher dead after panic: %v", res.Err)
	}
	if st := b.Metrics().Snapshot(); st.Failed != 1 || st.Completed != 1 {
		t.Errorf("failed=%d completed=%d, want 1/1", st.Failed, st.Completed)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBatcherContextCancelledCaller(t *testing.T) {
	r := &stubRunner{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 4}, nil)

	wait := occupy(t, b, r)
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Result, 1)
	go func() { ch <- b.Do(ctx, []float32{7}, time.Time{}) }()
	deadline := time.Now().Add(2 * time.Second)
	for len(b.queue) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if res := <-ch; !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", res.Err)
	}
	// The batch still runs (inference is not abortable) and the batcher
	// drains cleanly afterwards.
	close(r.gate)
	wait()
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBatcherExpiredInOpenBatchNotDispatched(t *testing.T) {
	// A request can be pulled into a batch while still live and then
	// expire during the MaxDelay straggler window. It must be answered
	// with ErrDeadlineExceeded and must never reach the replica.
	r := &stubRunner{}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 4, MaxDelay: 80 * time.Millisecond, QueueDepth: 8}, nil)

	res := b.Do(context.Background(), []float32{1}, time.Now().Add(10*time.Millisecond))
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("in-batch expired request got %v, want ErrDeadlineExceeded", res.Err)
	}
	if got := r.batchSizes(); len(got) != 0 {
		t.Fatalf("runner served batches %v for an all-expired batch", got)
	}
	if st := b.Metrics().Snapshot(); st.Expired != 1 || st.Completed != 0 {
		t.Errorf("expired=%d completed=%d, want 1/0", st.Expired, st.Completed)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBatcherExpiredRiderSweptLiveRiderServed(t *testing.T) {
	// Mixed batch: the expired rider is swept at dispatch, the live one
	// is served in a batch of one.
	r := &stubRunner{}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 4, MaxDelay: 80 * time.Millisecond, QueueDepth: 8}, nil)

	expCh := make(chan Result, 1)
	go func() { expCh <- b.Do(context.Background(), []float32{1}, time.Now().Add(10*time.Millisecond)) }()
	// Make sure the doomed request is first into the open batch.
	time.Sleep(5 * time.Millisecond)
	liveCh := make(chan Result, 1)
	go func() { liveCh <- b.Do(context.Background(), []float32{2}, time.Time{}) }()

	if res := <-expCh; !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("expired rider got %v, want ErrDeadlineExceeded", res.Err)
	}
	res := <-liveCh
	if res.Err != nil {
		t.Fatalf("live rider got %v, want success", res.Err)
	}
	if res.BatchSize != 1 {
		t.Errorf("live rider batch size %d, want 1 (expired rider must not count)", res.BatchSize)
	}
	if got := r.batchSizes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("runner served batches %v, want [1]", got)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBatcherRunnerScaling(t *testing.T) {
	r := &stubRunner{}
	b := NewBatcher([]Runner{r}, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, QueueDepth: 4, MaxRunners: 2}, nil)

	if n := b.Runners(); n != 1 {
		t.Fatalf("initial runners = %d, want 1", n)
	}
	if err := b.AddRunner(&stubRunner{}); err != nil {
		t.Fatalf("AddRunner: %v", err)
	}
	if err := b.AddRunner(&stubRunner{}); err == nil {
		t.Fatal("AddRunner past MaxRunners succeeded")
	}
	if n := b.Runners(); n != 2 {
		t.Fatalf("runners = %d, want 2", n)
	}
	if !b.RemoveRunner() {
		t.Fatal("RemoveRunner with 2 idle runners failed")
	}
	if b.RemoveRunner() {
		t.Fatal("RemoveRunner went below the floor of 1")
	}
	// The surviving runner still serves.
	if res := b.Do(context.Background(), []float32{3}, time.Time{}); res.Err != nil {
		t.Fatalf("post-scaling request: %v", res.Err)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := b.AddRunner(&stubRunner{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("AddRunner while draining got %v, want ErrDraining", err)
	}
}
