package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/appmult/retrain/internal/obs"
)

// Server fronts a set of loaded models with the HTTP JSON API:
//
//	POST /v1/predict  {"model": "...", "image": [...], "timeout_ms": 0}
//	GET  /v1/models   list served models and their specs
//	GET  /healthz     "ok", or 503 "draining" during shutdown
//	GET  /statz       per-model serving metrics (JSON, exact percentiles)
//	GET  /metrics     process-wide obs registry in Prometheus text format
//
// Admission control and micro-batching live in each model's Batcher;
// the server maps their outcomes onto status codes: 429 when the
// bounded queue is full, 504 when a request's deadline passes while
// queued, 503 while draining.
type Server struct {
	models   map[string]*Model
	order    []string
	start    time.Time
	draining atomic.Bool
}

// NewServer builds a server over the given models. Model names must
// be unique.
func NewServer(ms ...*Model) (*Server, error) {
	if len(ms) == 0 {
		return nil, errors.New("serve: server needs at least one model")
	}
	s := &Server{models: make(map[string]*Model, len(ms)), start: time.Now()}
	for _, m := range ms {
		name := m.Spec().Name
		if _, dup := s.models[name]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", name)
		}
		s.models[name] = m
		s.order = append(s.order, name)
	}
	return s, nil
}

// Handler returns the API routes. /metrics is the canonical export —
// the whole process's obs registry (serving, kernel, worker-pool, and
// training series) in Prometheus text format; /statz stays the
// JSON-shaped per-model view with exact sliding-window percentiles.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.Handle("/metrics", obs.Handler(obs.Default()))
	return mux
}

// Drain puts the server into draining mode (healthz flips to 503, new
// predictions are rejected) and drains every model's batcher: queued
// and in-flight requests complete, then the dispatchers stop. The
// first batcher error (e.g. a drain timeout) is returned, but every
// batcher is drained regardless.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var first error
	for _, name := range s.order {
		if err := s.models[name].Batcher().Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// PredictRequest is the /v1/predict request body.
type PredictRequest struct {
	// Model selects the served model; optional when exactly one model
	// is loaded.
	Model string `json:"model"`
	// Image is the flattened (3, HW, HW) input, values roughly [-1, 1].
	Image []float32 `json:"image"`
	// TimeoutMS, when positive, is the request deadline: if no replica
	// picks the request up in time it fails with 504.
	TimeoutMS int `json:"timeout_ms"`
}

// PredictResponse is the /v1/predict success body.
type PredictResponse struct {
	Model string `json:"model"`
	// Label is the argmax class.
	Label int `json:"label"`
	// Scores are the classifier logits.
	Scores []float32 `json:"scores"`
	// BatchSize is the coalesced batch the request was served in.
	BatchSize int `json:"batch_size"`
	// QueueMS and TotalMS split the server-side latency.
	QueueMS float64 `json:"queue_ms"`
	TotalMS float64 `json:"total_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{ErrDraining.Error()})
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	name := req.Model
	if name == "" && len(s.order) == 1 {
		name = s.order[0]
	}
	m, ok := s.models[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{fmt.Sprintf("unknown model %q", name)})
		return
	}
	if len(req.Image) != m.ImageLen() {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{fmt.Sprintf("image has %d values, model %q wants %d", len(req.Image), name, m.ImageLen())})
		return
	}
	var deadline time.Time
	if req.TimeoutMS > 0 {
		deadline = time.Now().Add(time.Duration(req.TimeoutMS) * time.Millisecond)
	}

	start := time.Now()
	res := m.Batcher().Do(r.Context(), req.Image, deadline)
	if res.Err != nil {
		writeJSON(w, statusFor(res.Err), errorResponse{res.Err.Error()})
		return
	}
	label := 0
	for i, v := range res.Scores {
		if v > res.Scores[label] {
			label = i
		}
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:     name,
		Label:     label,
		Scores:    res.Scores,
		BatchSize: res.BatchSize,
		QueueMS:   float64(res.Queued) / float64(time.Millisecond),
		TotalMS:   float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// statusFor maps batcher outcomes onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelInfo struct {
		Spec
		ImageLen int `json:"image_len"`
	}
	out := struct {
		Models []modelInfo `json:"models"`
	}{}
	for _, name := range s.order {
		m := s.models[name]
		out.Models = append(out.Models, modelInfo{Spec: m.Spec(), ImageLen: m.ImageLen()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	out := struct {
		UptimeS float64          `json:"uptime_s"`
		Models  map[string]Stats `json:"models"`
	}{
		UptimeS: time.Since(s.start).Seconds(),
		Models:  make(map[string]Stats, len(s.models)),
	}
	for name, m := range s.models {
		out.Models[name] = m.Metrics().Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}
