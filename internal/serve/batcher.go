package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/appmult/retrain/internal/obs"
)

// This file implements the dynamic micro-batching queue at the heart
// of the serving subsystem. Single-image requests arrive concurrently;
// the approximate GEMM kernels (internal/nn) amortize their fixed
// costs — LUT-row hoisting, operand transposes, worker-pool handoff —
// across rows, so serving each request alone wastes most of the PR 2
// speedup. The batcher coalesces queued requests into one GEMM-friendly
// batch per free replica: a dispatcher acquires a replica, blocks for
// the first request, then gathers more until the batch fills or the
// configured delay elapses. Under load every replica is busy, requests
// accumulate, and batches fill instantly; under light traffic a lone
// request waits at most MaxDelay.

// Errors a Batcher returns at admission or while a request is queued.
var (
	// ErrOverloaded is returned when the bounded queue is full — the
	// admission-control signal the HTTP layer maps to 429.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrDraining is returned for requests submitted after Drain began.
	ErrDraining = errors.New("serve: draining")
	// ErrDeadlineExceeded is returned when a request's deadline passed
	// before a replica picked it up.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded while queued")
)

// Runner executes one coalesced batch of flattened images and returns
// one score vector per image. A Runner is used by one batch at a time;
// concurrency comes from registering several runners with the Batcher
// (see models.Replicas).
type Runner interface {
	// Run scores one coalesced batch, returning a score vector per
	// image in order, or an error that fails every request in it.
	Run(images [][]float32) ([][]float32, error)
}

// Result is the outcome of one request.
type Result struct {
	// Scores is the classifier output (logits), nil when Err is set.
	Scores []float32
	// BatchSize is the size of the coalesced batch the request rode in.
	BatchSize int
	// Queued is the time spent waiting for a replica.
	Queued time.Duration
	// Err is nil on success.
	Err error
}

// job is one queued request.
type job struct {
	image    []float32
	deadline time.Time // zero means none
	enq      time.Time
	done     chan Result // buffered; the dispatcher never blocks on it
}

// Config tunes one Batcher.
type BatcherConfig struct {
	// MaxBatch caps the coalesced batch size (default 8).
	MaxBatch int
	// MaxDelay is how long the dispatcher holds a non-full batch open
	// for stragglers once it has a replica and a first request
	// (default 2ms).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue (default 4*MaxBatch).
	QueueDepth int
	// MaxRunners bounds how many runners AddRunner may grow the pool
	// to — the autoscaler's ceiling (default 4x the initial runner
	// count, at least 8).
	MaxRunners int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Batcher coalesces concurrent requests into batches over a fixed set
// of runners. All methods are safe for concurrent use.
type Batcher struct {
	cfg     BatcherConfig
	queue   chan *job
	runners chan Runner
	metrics *Metrics

	// mu guards draining against admission: Do holds the read lock
	// across its inflight.Add, Drain takes the write lock before
	// waiting, so no request can be admitted after draining flips and
	// the WaitGroup wait cannot race an Add.
	mu       sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	// scaleMu guards the live runner count against concurrent
	// AddRunner/RemoveRunner calls (the autoscaler and tests).
	scaleMu  sync.Mutex
	nrunners int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewBatcher starts a batcher dispatching over the given runners.
// metrics may be nil.
func NewBatcher(runners []Runner, cfg BatcherConfig, metrics *Metrics) *Batcher {
	if len(runners) == 0 {
		panic("serve: batcher needs at least one runner")
	}
	cfg = cfg.withDefaults()
	if cfg.MaxRunners < len(runners) {
		cfg.MaxRunners = 4 * len(runners)
		if cfg.MaxRunners < 8 {
			cfg.MaxRunners = 8
		}
	}
	if metrics == nil {
		metrics = NewMetrics("default")
	}
	b := &Batcher{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		runners:  make(chan Runner, cfg.MaxRunners),
		metrics:  metrics,
		nrunners: len(runners),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Callback gauges: a new batcher for the same model (reload, test
	// re-run) replaces the previous closure, so the series always
	// follows the live queue.
	reg := obs.Default()
	reg.GaugeFunc("serve_queue_depth", "Requests waiting in the admission queue.",
		func() float64 { return float64(len(b.queue)) }, "model", metrics.model)
	reg.GaugeFunc("serve_queue_capacity", "Admission queue bound (requests past it are rejected with 429).",
		func() float64 { return float64(cap(b.queue)) }, "model", metrics.model)
	reg.GaugeFunc("serve_replicas_idle", "Replicas currently parked waiting for a batch.",
		func() float64 { return float64(len(b.runners)) }, "model", metrics.model)
	reg.GaugeFunc("serve_replicas_live", "Replicas currently registered with the batcher (idle or computing).",
		func() float64 { return float64(b.Runners()) }, "model", metrics.model)
	for _, r := range runners {
		b.runners <- r
	}
	go b.dispatch()
	return b
}

// Runners returns the number of runners currently registered (idle or
// mid-batch).
func (b *Batcher) Runners() int {
	b.scaleMu.Lock()
	defer b.scaleMu.Unlock()
	return b.nrunners
}

// AddRunner grows the dispatch pool by one runner — the autoscaler's
// scale-up primitive. It fails once the pool holds MaxRunners or the
// batcher is draining.
func (b *Batcher) AddRunner(r Runner) error {
	b.mu.RLock()
	draining := b.draining
	b.mu.RUnlock()
	if draining {
		return ErrDraining
	}
	b.scaleMu.Lock()
	defer b.scaleMu.Unlock()
	if b.nrunners >= b.cfg.MaxRunners {
		return fmt.Errorf("serve: runner pool at its cap of %d", b.cfg.MaxRunners)
	}
	b.nrunners++
	b.runners <- r
	return nil
}

// RemoveRunner retires one idle runner from the pool — the
// autoscaler's scale-down primitive. It reports false (and removes
// nothing) when only one runner remains or every runner is mid-batch;
// the caller simply retries at its next tick.
func (b *Batcher) RemoveRunner() bool {
	b.scaleMu.Lock()
	defer b.scaleMu.Unlock()
	if b.nrunners <= 1 {
		return false
	}
	select {
	case <-b.runners:
		b.nrunners--
		return true
	default:
		return false
	}
}

// Metrics returns the batcher's metrics aggregator.
func (b *Batcher) Metrics() *Metrics { return b.metrics }

// Do submits one image and blocks until its batch has been served (or
// the request was rejected/expired). deadline zero means no deadline.
func (b *Batcher) Do(ctx context.Context, image []float32, deadline time.Time) Result {
	j := &job{image: image, deadline: deadline, enq: time.Now(), done: make(chan Result, 1)}
	if err := b.admit(j); err != nil {
		b.metrics.Reject()
		return Result{Err: err}
	}
	// The dispatcher always answers an admitted job, so waiting only on
	// j.done cannot hang; ctx is checked to give disconnected callers a
	// prompt error (the batch still runs — inference is not abortable).
	select {
	case r := <-j.done:
		return r
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// admit enqueues a job under the admission lock.
func (b *Batcher) admit(j *job) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.draining {
		return ErrDraining
	}
	select {
	case b.queue <- j:
		b.inflight.Add(1)
		return nil
	default:
		return ErrOverloaded
	}
}

// dispatch is the batching loop: acquire a replica, gather a batch,
// hand it off, repeat. Handing the batch to a goroutine lets the
// dispatcher start gathering for the next free replica while this one
// computes.
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		var r Runner
		select {
		case r = <-b.runners:
		case <-b.stop:
			return
		}
		batch := b.gather()
		if batch == nil {
			b.runners <- r
			return
		}
		go b.run(r, batch)
	}
}

// gather blocks for the first live job, then keeps the batch open for
// stragglers until it fills or MaxDelay elapses. It returns nil when
// the batcher is stopping.
func (b *Batcher) gather() []*job {
	var batch []*job
	for batch == nil {
		select {
		case j := <-b.queue:
			if b.expired(j) {
				continue
			}
			batch = append(batch, j)
		case <-b.stop:
			return nil
		}
	}
	if b.cfg.MaxBatch > 1 {
		timer := time.NewTimer(b.cfg.MaxDelay)
		defer timer.Stop()
		for len(batch) < b.cfg.MaxBatch {
			select {
			case j := <-b.queue:
				if b.expired(j) {
					continue
				}
				batch = append(batch, j)
			case <-timer.C:
				return batch
			}
		}
	}
	return batch
}

// expired fails a job whose deadline passed while it queued.
func (b *Batcher) expired(j *job) bool {
	if j.deadline.IsZero() || time.Now().Before(j.deadline) {
		return false
	}
	b.metrics.Expire()
	j.done <- Result{Err: ErrDeadlineExceeded, Queued: time.Since(j.enq)}
	b.inflight.Done()
	return true
}

// run executes one batch on a replica and answers every rider.
func (b *Batcher) run(r Runner, batch []*job) {
	defer func() { b.runners <- r }()
	// Dispatch-time deadline sweep: gather() rejects jobs that are
	// already expired when pulled off the queue, but a job admitted to
	// the batch can still expire while the batch is held open for
	// stragglers (MaxDelay). Serving it anyway would burn replica time
	// on an answer the caller was promised would be a 504 — so expiry
	// is re-checked at the last moment before compute, and a batch
	// whose riders all expired never reaches the replica.
	live := batch[:0]
	for _, j := range batch {
		if b.expired(j) {
			continue
		}
		live = append(live, j)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	images := make([][]float32, len(batch))
	for i, j := range batch {
		images[i] = j.image
	}
	scores, err := runGuarded(r, images)
	if err == nil && len(scores) != len(batch) {
		err = fmt.Errorf("serve: runner returned %d results for %d images", len(scores), len(batch))
	}
	b.metrics.Batch(len(batch))
	now := time.Now()
	for i, j := range batch {
		res := Result{BatchSize: len(batch), Queued: now.Sub(j.enq)}
		if err != nil {
			res.Err = err
			b.metrics.Fail()
		} else {
			res.Scores = scores[i]
			b.metrics.Complete(now.Sub(j.enq))
		}
		j.done <- res
		b.inflight.Done()
	}
}

// runGuarded converts an inference panic into an error so one poisoned
// batch cannot take the dispatcher down.
func runGuarded(r Runner, images [][]float32) (scores [][]float32, err error) {
	defer func() {
		if p := recover(); p != nil {
			scores, err = nil, fmt.Errorf("serve: inference panicked: %v", p)
		}
	}()
	return r.Run(images)
}

// Drain gracefully shuts the batcher down: new submissions are
// rejected with ErrDraining immediately, queued and in-flight requests
// are served to completion, then the dispatcher exits. It returns
// ctx's error if the drain does not finish in time (the dispatcher is
// still stopped; unfinished requests keep their pending state).
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		b.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
	if err != nil {
		// Timed out: the dispatcher has exited, so jobs still queued
		// will never be served — fail them instead of leaving their
		// callers waiting. In-flight batches still complete on their
		// own goroutines.
		for {
			select {
			case j := <-b.queue:
				j.done <- Result{Err: ErrDraining}
				b.inflight.Done()
			default:
				return err
			}
		}
	}
	return nil
}
