package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"github.com/appmult/retrain/internal/obs"
)

// latWindow is the sliding window of per-request latencies kept for
// percentile estimation. 4096 samples bound both memory and the cost
// of the sort in Snapshot while covering several seconds of traffic at
// the throughputs a CPU backend reaches.
const latWindow = 4096

// Metrics aggregates one served model's counters: request outcomes,
// achieved batch sizes, and a sliding latency window. All methods are
// safe for concurrent use.
//
// Metrics is a facade over two sinks kept deliberately in lockstep:
// the private sliding-window state that /statz has always reported
// (exact percentiles over recent traffic, lifetime throughput), and
// the process-wide obs registry, where the same events land as
// counters and fixed-bucket histograms labeled by model — the
// canonical /metrics export. The registry is get-or-create, so two
// Metrics for the same model name share series.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	completed uint64
	rejected  uint64
	expired   uint64
	failed    uint64
	batches   uint64
	batched   uint64 // sum of achieved batch sizes
	lat       [latWindow]float64
	latN      int // filled entries (caps at latWindow)
	latIdx    int // next write position

	model      string
	completedC *obs.Counter
	rejectedC  *obs.Counter
	expiredC   *obs.Counter
	failedC    *obs.Counter
	batchesC   *obs.Counter
	latencyH   *obs.Histogram
	batchH     *obs.Histogram
}

// NewMetrics starts a metrics window at the current time for the named
// model, registering the model's serving series with the default obs
// registry.
func NewMetrics(model string) *Metrics {
	if model == "" {
		model = "default"
	}
	reg := obs.Default()
	const outcomeHelp = "Requests by final outcome: completed, rejected (queue full), expired (deadline passed while queued), failed (replica error or panic)."
	return &Metrics{
		start:      time.Now(),
		model:      model,
		completedC: reg.Counter("serve_requests_total", outcomeHelp, "model", model, "outcome", "completed"),
		rejectedC:  reg.Counter("serve_requests_total", outcomeHelp, "model", model, "outcome", "rejected"),
		expiredC:   reg.Counter("serve_requests_total", outcomeHelp, "model", model, "outcome", "expired"),
		failedC:    reg.Counter("serve_requests_total", outcomeHelp, "model", model, "outcome", "failed"),
		batchesC: reg.Counter("serve_batches_total",
			"Coalesced batches dispatched to replicas.", "model", model),
		latencyH: reg.Histogram("serve_request_latency_ms",
			"End-to-end latency of completed requests (queue wait plus inference).",
			obs.LatencyBucketsMs, "model", model),
		batchH: reg.Histogram("serve_batch_size",
			"Achieved size of dispatched batches.", obs.SizeBuckets, "model", model),
	}
}

// Model returns the model name the metrics are labeled with.
func (m *Metrics) Model() string { return m.model }

// Complete records one successfully served request and its end-to-end
// latency (queue wait + inference).
func (m *Metrics) Complete(latency time.Duration) {
	ms := float64(latency) / float64(time.Millisecond)
	m.mu.Lock()
	m.completed++
	m.lat[m.latIdx] = ms
	m.latIdx = (m.latIdx + 1) % latWindow
	if m.latN < latWindow {
		m.latN++
	}
	m.mu.Unlock()
	m.completedC.Inc()
	m.latencyH.Observe(ms)
}

// Reject records one request refused at admission (queue full or
// draining).
func (m *Metrics) Reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
	m.rejectedC.Inc()
}

// Expire records one request whose deadline passed while queued.
func (m *Metrics) Expire() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
	m.expiredC.Inc()
}

// Fail records one request that reached a replica but errored.
func (m *Metrics) Fail() {
	m.mu.Lock()
	m.failed++
	m.mu.Unlock()
	m.failedC.Inc()
}

// Batch records one dispatched batch of the given size.
func (m *Metrics) Batch(size int) {
	m.mu.Lock()
	m.batches++
	m.batched += uint64(size)
	m.mu.Unlock()
	m.batchesC.Inc()
	m.batchH.Observe(float64(size))
}

// Stats is a point-in-time snapshot of a model's serving metrics, in
// the shape /statz reports.
type Stats struct {
	Completed     uint64  `json:"completed"`
	Rejected      uint64  `json:"rejected"`
	Expired       uint64  `json:"expired"`
	Failed        uint64  `json:"failed"`
	Batches       uint64  `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// Snapshot computes the current stats. Percentiles cover the sliding
// latency window; throughput covers the full lifetime of the metrics.
func (m *Metrics) Snapshot() Stats {
	m.mu.Lock()
	s := Stats{
		Completed: m.completed,
		Rejected:  m.rejected,
		Expired:   m.expired,
		Failed:    m.failed,
		Batches:   m.batches,
	}
	if m.batches > 0 {
		s.MeanBatch = float64(m.batched) / float64(m.batches)
	}
	if el := time.Since(m.start).Seconds(); el > 0 {
		s.ThroughputRPS = float64(m.completed) / el
	}
	window := append([]float64(nil), m.lat[:m.latN]...)
	m.mu.Unlock()

	if len(window) > 0 {
		sort.Float64s(window)
		s.P50Ms = percentile(window, 0.50)
		s.P95Ms = percentile(window, 0.95)
		s.P99Ms = percentile(window, 0.99)
	}
	return s
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
