package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latWindow is the sliding window of per-request latencies kept for
// percentile estimation. 4096 samples bound both memory and the cost
// of the sort in Snapshot while covering several seconds of traffic at
// the throughputs a CPU backend reaches.
const latWindow = 4096

// Metrics aggregates one served model's counters: request outcomes,
// achieved batch sizes, and a sliding latency window. All methods are
// safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	completed uint64
	rejected  uint64
	expired   uint64
	failed    uint64
	batches   uint64
	batched   uint64 // sum of achieved batch sizes
	lat       [latWindow]float64
	latN      int // filled entries (caps at latWindow)
	latIdx    int // next write position
}

// NewMetrics starts a metrics window at the current time.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Complete records one successfully served request and its end-to-end
// latency (queue wait + inference).
func (m *Metrics) Complete(latency time.Duration) {
	ms := float64(latency) / float64(time.Millisecond)
	m.mu.Lock()
	m.completed++
	m.lat[m.latIdx] = ms
	m.latIdx = (m.latIdx + 1) % latWindow
	if m.latN < latWindow {
		m.latN++
	}
	m.mu.Unlock()
}

// Reject records one request refused at admission (queue full or
// draining).
func (m *Metrics) Reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// Expire records one request whose deadline passed while queued.
func (m *Metrics) Expire() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
}

// Fail records one request that reached a replica but errored.
func (m *Metrics) Fail() {
	m.mu.Lock()
	m.failed++
	m.mu.Unlock()
}

// Batch records one dispatched batch of the given size.
func (m *Metrics) Batch(size int) {
	m.mu.Lock()
	m.batches++
	m.batched += uint64(size)
	m.mu.Unlock()
}

// Stats is a point-in-time snapshot of a model's serving metrics, in
// the shape /statz reports.
type Stats struct {
	Completed     uint64  `json:"completed"`
	Rejected      uint64  `json:"rejected"`
	Expired       uint64  `json:"expired"`
	Failed        uint64  `json:"failed"`
	Batches       uint64  `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// Snapshot computes the current stats. Percentiles cover the sliding
// latency window; throughput covers the full lifetime of the metrics.
func (m *Metrics) Snapshot() Stats {
	m.mu.Lock()
	s := Stats{
		Completed: m.completed,
		Rejected:  m.rejected,
		Expired:   m.expired,
		Failed:    m.failed,
		Batches:   m.batches,
	}
	if m.batches > 0 {
		s.MeanBatch = float64(m.batched) / float64(m.batches)
	}
	if el := time.Since(m.start).Seconds(); el > 0 {
		s.ThroughputRPS = float64(m.completed) / el
	}
	window := append([]float64(nil), m.lat[:m.latN]...)
	m.mu.Unlock()

	if len(window) > 0 {
		sort.Float64s(window)
		s.P50Ms = percentile(window, 0.50)
		s.P95Ms = percentile(window, 0.95)
		s.P99Ms = percentile(window, 0.99)
	}
	return s
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
