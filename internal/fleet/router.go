package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Errors the router returns for a routed prediction; the HTTP layer
// maps them onto status codes.
var (
	// ErrOverloaded is returned when the router's bounded admission is
	// full (429).
	ErrOverloaded = errors.New("fleet: router at max inflight")
	// ErrUnknownModel is returned for a model no worker registered (404).
	ErrUnknownModel = errors.New("fleet: unknown model")
	// ErrNoWorker is returned when every replica hosting the model is
	// gone or already tried (503).
	ErrNoWorker = errors.New("fleet: no live worker for model")
	// ErrDeadlineExceeded is returned when the request's deadline passed
	// before any replica answered (504).
	ErrDeadlineExceeded = errors.New("fleet: deadline exceeded")
)

// RouterConfig parameterizes NewRouter.
type RouterConfig struct {
	// Addr is the TCP listen address workers dial (e.g. ":9001").
	Addr string
	// ReplicaSet is how many distinct workers form one model's replica
	// set on the consistent-hash ring: the primary plus its hedge and
	// failover targets (default 2).
	ReplicaSet int
	// MaxInflight bounds concurrently admitted predictions; past it
	// requests are rejected with 429 (default 256).
	MaxInflight int
	// MaxAttempts bounds dispatches per request across hedges and
	// failovers (default 3).
	MaxAttempts int
	// Hedge enables dispatching a second attempt to the next replica
	// once a request outlives the hedge deadline.
	Hedge bool
	// HedgeMin floors the hedge deadline (default 20ms).
	HedgeMin time.Duration
	// HedgeFactor scales the observed latency quantile into the hedge
	// deadline: hedge after max(HedgeMin, HedgeFactor*q) (default 2).
	HedgeFactor float64
	// HedgeQuantile is the latency quantile the hedge deadline tracks
	// (default 0.95).
	HedgeQuantile float64
	// CacheBytes is the response-cache budget; 0 disables caching.
	CacheBytes int
	// RequestTimeout bounds one routed prediction end to end
	// (default 30s). A client timeout_ms below it wins.
	RequestTimeout time.Duration
	// HeartbeatEvery is the ping cadence per worker (default 500ms).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout declares a worker dead when no pong arrived for
	// this long (default 5s).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// Logf, when non-nil, receives progress and failure lines.
	Logf func(format string, args ...any)
	// WrapConn, when non-nil, wraps every accepted connection; tests
	// use it to interpose fault injectors and targeted kills.
	WrapConn func(net.Conn) net.Conn
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ReplicaSet < 1 {
		c.ReplicaSet = 2
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 256
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 2
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// fworker is the router's handle on one registered worker connection.
type fworker struct {
	id       int
	member   string // consistent-hash ring member name
	fc       *frameConn
	models   map[string]bool
	lastPong atomic.Int64
	dead     atomic.Bool
}

// modelEntry is the router's catalog record for one model name.
type modelEntry struct {
	kind     string
	classes  int
	imageLen int
	quantLo  float32
	quantHi  float32
	hosts    map[int]*fworker
	rr       uint64 // round-robin cursor over the replica set
}

// call is one client prediction in flight: attempts feed its done
// channel, the first one wins.
type call struct {
	done      chan callResult
	finished  atomic.Bool
	primaryID uint64       // first attempt's id, for hedge-win accounting
	tried     map[int]bool // worker ids dispatched to (guarded by Router.mu)
	attempts  int          // dispatches so far (guarded by Router.mu)
	model     string
	image     []float32
	budgetMS  uint32
}

// callResult is one attempt's outcome.
type callResult struct {
	scores    []float32
	batchSize int
	code      uint8 // error code, 0 on success
	msg       string
	workerID  int
	attemptID uint64
}

// attempt is one dispatch of a call to one worker.
type attempt struct {
	id   uint64
	c    *call
	w    *fworker
	isHedge bool
}

// Router accepts fleet workers, routes client predictions to them by
// consistent hash with hedging, failover, and response caching, and
// fronts the whole tier with the HTTP API (Handler). All methods are
// safe for concurrent use.
type Router struct {
	cfg   RouterConfig
	ln    net.Listener
	cache *Cache

	inflight chan struct{}

	mu       sync.Mutex
	workers  map[int]*fworker
	catalog  map[string]*modelEntry
	ring     *Ring
	attempts map[uint64]*attempt
	nextID   uint64
	nworkers int // admitted so far, for id assignment

	lat   map[string]*latWindow
	latMu sync.Mutex

	// Connection-goroutine lifecycle: every accepted conn is tracked so
	// Close can force-close it, and every spawned goroutine registers
	// in connWG so Close can join them — after Close returns, nothing
	// touches the router or its log sink.
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]bool

	done      chan struct{}
	closeOnce sync.Once
	start     time.Time
}

// NewRouter starts listening for workers. Call Close when done.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", cfg.Addr, err)
	}
	r := &Router{
		cfg:      cfg,
		ln:       ln,
		cache:    NewCache(cfg.CacheBytes),
		inflight: make(chan struct{}, cfg.MaxInflight),
		workers:  make(map[int]*fworker),
		catalog:  make(map[string]*modelEntry),
		ring:     NewRing(),
		attempts: make(map[uint64]*attempt),
		lat:      make(map[string]*latWindow),
		conns:    make(map[net.Conn]bool),
		done:     make(chan struct{}),
		start:    time.Now(),
	}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the worker listener's address (useful with ":0").
func (r *Router) Addr() string { return r.ln.Addr().String() }

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Close stops the listener, dismisses every worker, and fails the
// attempts still in flight. It does not return until every connection
// goroutine (handshakes, readers, heartbeat monitors) has exited, so
// nothing touches the router — or its log sink — afterwards.
// Idempotent.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.done)
		r.ln.Close()
		r.mu.Lock()
		ws := make([]*fworker, 0, len(r.workers))
		for _, w := range r.workers {
			ws = append(ws, w)
		}
		r.mu.Unlock()
		for _, w := range ws {
			w.fc.send(frameBye, nil)
			r.workerDead(w, "router closed", false)
		}
		// Force-close every remaining conn — including ones still mid
		// handshake, which the Bye loop above (registered workers only)
		// misses — then join all connection goroutines.
		r.connMu.Lock()
		for conn := range r.conns {
			conn.Close()
		}
		r.connMu.Unlock()
		r.connWG.Wait()
	})
}

// Workers returns the number of currently registered workers.
func (r *Router) Workers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// AwaitWorkers blocks until at least min workers are registered or the
// timeout expires.
func (r *Router) AwaitWorkers(min int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if r.Workers() >= min {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %d of %d workers after %s", r.Workers(), min, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// acceptLoop admits TCP connections and handshakes each in its own
// goroutine. It exits when the listener closes.
func (r *Router) acceptLoop() {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		if r.cfg.WrapConn != nil {
			conn = r.cfg.WrapConn(conn)
		}
		r.trackConn(conn)
		r.connWG.Add(1)
		go func(conn net.Conn) {
			defer r.connWG.Done()
			r.handshake(conn)
		}(conn)
	}
}

// trackConn registers an accepted connection so Close can force it
// shut; that unblocks any goroutine parked in a read on it.
func (r *Router) trackConn(conn net.Conn) {
	r.connMu.Lock()
	r.conns[conn] = true
	r.connMu.Unlock()
}

func (r *Router) untrackConn(conn net.Conn) {
	r.connMu.Lock()
	delete(r.conns, conn)
	r.connMu.Unlock()
}

// handshake validates a connecting worker, reads its model
// registration, and admits it into routing.
func (r *Router) handshake(conn net.Conn) {
	fc := newFrameConn(conn, r.cfg.WriteTimeout, 10*time.Second)
	t, p, err := fc.recv()
	if err != nil || t != frameHello {
		conn.Close()
		r.untrackConn(conn)
		return
	}
	d := &dec{b: p}
	if ver := d.u32(); d.err() != nil || ver != ProtocolVersion {
		r.logf("rejecting worker speaking protocol %d (want %d)", d.u32(), ProtocolVersion)
		conn.Close()
		r.untrackConn(conn)
		return
	}
	r.mu.Lock()
	r.nworkers++
	id := r.nworkers
	r.mu.Unlock()
	var e enc
	e.u32(ProtocolVersion)
	e.u32(uint32(id))
	if fc.send(frameWelcome, e.b) != nil {
		conn.Close()
		r.untrackConn(conn)
		return
	}
	t, p, err = fc.recv()
	if err != nil || t != frameRegister {
		conn.Close()
		r.untrackConn(conn)
		return
	}
	w := &fworker{id: id, member: fmt.Sprintf("w%d", id), fc: fc, models: make(map[string]bool)}
	w.lastPong.Store(time.Now().UnixNano())
	if err := r.register(w, p); err != nil {
		r.logf("worker %d: bad registration: %v", id, err)
		conn.Close()
		r.untrackConn(conn)
		return
	}
	fc.readTimeout = 0 // liveness is the heartbeat monitor's job now
	r.connWG.Add(2)
	go func() {
		defer r.connWG.Done()
		defer r.untrackConn(conn)
		r.readLoop(w)
	}()
	go func() {
		defer r.connWG.Done()
		r.heartbeatLoop(w)
	}()
	workersJoined.Inc()
	r.logf("worker %d registered %v (%d live)", id, modelNames(w.models), r.Workers())
}

func modelNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// register decodes a registration payload and installs the worker into
// the catalog and the ring. Conflicting model metadata (same name,
// different shape) is a registration error.
func (r *Router) register(w *fworker, payload []byte) error {
	d := &dec{b: payload}
	n := int(d.u32())
	type reg struct {
		name, kind       string
		classes, imgLen  int
		quantLo, quantHi float32
	}
	regs := make([]reg, 0, n)
	for i := 0; i < n && !d.fail; i++ {
		regs = append(regs, reg{
			name: d.str(), kind: d.str(),
			classes: int(d.u32()), imgLen: int(d.u32()),
			quantLo: d.f32(), quantHi: d.f32(),
		})
	}
	if err := d.err(); err != nil {
		return err
	}
	if len(regs) == 0 {
		return fmt.Errorf("fleet: worker registered zero models")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range regs {
		ent, ok := r.catalog[g.name]
		if !ok {
			ent = &modelEntry{kind: g.kind, classes: g.classes, imageLen: g.imgLen,
				quantLo: g.quantLo, quantHi: g.quantHi, hosts: make(map[int]*fworker)}
			r.catalog[g.name] = ent
		} else if ent.imageLen != g.imgLen || ent.classes != g.classes ||
			ent.quantLo != g.quantLo || ent.quantHi != g.quantHi {
			return fmt.Errorf("fleet: model %q registered with conflicting shape", g.name)
		}
		ent.hosts[w.id] = w
		w.models[g.name] = true
	}
	r.workers[w.id] = w
	r.ring.Add(w.member)
	workersLive.Set(float64(len(r.workers)))
	return nil
}

// readLoop routes one worker's frames: pongs feed the liveness clock,
// results and errors complete their attempts. Any framing error kills
// the connection.
func (r *Router) readLoop(w *fworker) {
	for {
		t, p, err := w.fc.recv()
		if err != nil {
			r.workerDead(w, fmt.Sprintf("read: %v", err), false)
			return
		}
		switch t {
		case framePong:
			w.lastPong.Store(time.Now().UnixNano())
		case frameResult:
			d := &dec{b: p}
			res := callResult{attemptID: d.u64(), workerID: w.id}
			res.batchSize = int(d.u32())
			res.scores = d.f32s()
			if d.err() != nil {
				r.workerDead(w, "malformed result frame", false)
				return
			}
			r.complete(res)
		case frameError:
			d := &dec{b: p}
			res := callResult{attemptID: d.u64(), workerID: w.id}
			res.code = d.u8()
			res.msg = d.str()
			if d.err() != nil || res.code == 0 {
				r.workerDead(w, "malformed error frame", false)
				return
			}
			r.complete(res)
		default:
			r.workerDead(w, fmt.Sprintf("unexpected %s frame", t), false)
			return
		}
	}
}

// heartbeatLoop pings the worker and declares it dead when pongs stop.
func (r *Router) heartbeatLoop(w *fworker) {
	tick := time.NewTicker(r.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if w.dead.Load() {
				return
			}
			last := time.Unix(0, w.lastPong.Load())
			if time.Since(last) > r.cfg.HeartbeatTimeout {
				heartbeatTimeouts.Inc()
				r.workerDead(w, fmt.Sprintf("heartbeat timeout (%s since last pong)",
					time.Since(last).Round(time.Millisecond)), true)
				return
			}
			var e enc
			e.u64(uint64(time.Now().UnixNano()))
			if err := w.fc.send(framePing, e.b); err != nil {
				r.workerDead(w, fmt.Sprintf("ping: %v", err), false)
				return
			}
		case <-r.done:
			return
		}
	}
}

// workerDead removes a worker exactly once and fails its in-flight
// attempts over to the surviving replicas — the warm-standby failover
// path. Requests whose call is already finished are dropped; the rest
// are re-dispatched (or failed when no untried replica remains), so a
// killed worker costs latency, never a lost response.
func (r *Router) workerDead(w *fworker, reason string, byHeartbeat bool) {
	if !w.dead.CompareAndSwap(false, true) {
		return
	}
	w.fc.close()
	workersLost.Inc()
	select {
	case <-r.done:
		// Shutdown teardown, not a failure; stay quiet so the log sink
		// (t.Logf in tests) is never touched during teardown.
	default:
		r.logf("worker %d lost: %s", w.id, reason)
	}

	r.mu.Lock()
	delete(r.workers, w.id)
	r.ring.Remove(w.member)
	for name := range w.models {
		if ent, ok := r.catalog[name]; ok {
			delete(ent.hosts, w.id)
		}
	}
	workersLive.Set(float64(len(r.workers)))
	var orphans []*attempt
	for id, att := range r.attempts {
		if att.w == w {
			delete(r.attempts, id)
			orphans = append(orphans, att)
		}
	}
	r.mu.Unlock()

	for _, att := range orphans {
		if att.c.finished.Load() {
			continue
		}
		failovers.Inc()
		if err := r.dispatch(att.c, true); err != nil {
			r.deliver(att.c, callResult{code: errCodeInternal, msg: err.Error(), attemptID: att.id})
		}
	}
}

// complete routes one worker answer to its call. Late answers — the
// losing side of a hedge, or a result racing a failover re-dispatch —
// are counted and dropped, so a client never sees a duplicate.
func (r *Router) complete(res callResult) {
	r.mu.Lock()
	att, ok := r.attempts[res.attemptID]
	delete(r.attempts, res.attemptID)
	r.mu.Unlock()
	if !ok {
		duplicateResults.Inc()
		return
	}
	// Retryable worker errors fail over to an untried replica instead
	// of surfacing, as long as the attempt budget holds.
	if res.code == errCodeOverloaded || res.code == errCodeInternal {
		if !att.c.finished.Load() {
			if err := r.dispatch(att.c, false); err == nil {
				return
			}
		}
	}
	if att.isHedge && res.code == 0 {
		hedgeWins.Inc()
	}
	r.deliver(att.c, res)
}

// deliver finishes a call exactly once.
func (r *Router) deliver(c *call, res callResult) {
	if !c.finished.CompareAndSwap(false, true) {
		duplicateResults.Inc()
		return
	}
	c.done <- res
}

// dispatch sends one more attempt of c to the next untried worker in
// the model's replica set (rotated round-robin so load spreads across
// the set). asFailover marks re-dispatches after a worker death; both
// paths count against MaxAttempts.
func (r *Router) dispatch(c *call, asFailover bool) error {
	r.mu.Lock()
	ent, ok := r.catalog[c.model]
	if !ok {
		r.mu.Unlock()
		return ErrUnknownModel
	}
	if c.attempts >= r.cfg.MaxAttempts {
		r.mu.Unlock()
		return ErrNoWorker
	}
	set := r.ring.Ordered(c.model, r.cfg.ReplicaSet)
	// Rotate the preference list so consecutive requests for the same
	// model spread across its replica set instead of hammering the
	// primary; hedges and failovers continue down the same rotation.
	start := int(ent.rr % uint64(max(len(set), 1)))
	if c.attempts == 0 {
		ent.rr++
	}
	var w *fworker
	for i := 0; i < len(set); i++ {
		member := set[(start+i)%len(set)]
		cand := r.memberWorker(member)
		if cand == nil || cand.dead.Load() || !cand.models[c.model] || c.tried[cand.id] {
			continue
		}
		w = cand
		break
	}
	if w == nil {
		// The ring's replica set is exhausted; fall back to any live
		// untried host of the model (the set may be smaller than the
		// host count).
		for _, cand := range ent.hosts {
			if !cand.dead.Load() && !c.tried[cand.id] {
				w = cand
				break
			}
		}
	}
	if w == nil {
		r.mu.Unlock()
		return ErrNoWorker
	}
	c.tried[w.id] = true
	c.attempts++
	r.nextID++
	att := &attempt{id: r.nextID, c: c, w: w, isHedge: c.attempts > 1 && !asFailover}
	if c.attempts == 1 {
		c.primaryID = att.id
	}
	r.attempts[att.id] = att
	r.mu.Unlock()

	var e enc
	e.u64(att.id)
	e.str(c.model)
	e.u32(c.budgetMS)
	e.f32s(c.image)
	if err := w.fc.send(framePredict, e.b); err != nil {
		// The death path re-dispatches this attempt to a survivor.
		r.workerDead(w, fmt.Sprintf("send predict: %v", err), false)
	}
	return nil
}

// memberWorker resolves a ring member name to its live worker. Caller
// holds r.mu.
func (r *Router) memberWorker(member string) *fworker {
	for _, w := range r.workers {
		if w.member == member {
			return w
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PredictMeta reports how a routed prediction was served.
type PredictMeta struct {
	// Cached is true when the response came from the response cache.
	Cached bool
	// Hedged is true when a second attempt was dispatched.
	Hedged bool
	// Attempts is the number of dispatches (0 for a cache hit).
	Attempts int
	// WorkerID identifies the worker that answered (0 for a cache hit).
	WorkerID int
	// BatchSize is the micro-batch the answer rode in (0 for a cache
	// hit).
	BatchSize int
}

// ModelInfo describes one registered model for the HTTP catalog.
type ModelInfo struct {
	// Name is the model's routing key.
	Name string `json:"name"`
	// Kind is the architecture the hosting workers declared.
	Kind string `json:"kind"`
	// Classes is the classifier width.
	Classes int `json:"classes"`
	// ImageLen is the flattened input size clients must send.
	ImageLen int `json:"image_len"`
	// Hosts is the number of live workers hosting the model.
	Hosts int `json:"hosts"`
}

// Models lists the registered catalog, sorted by name.
func (r *Router) Models() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, 0, len(r.catalog))
	for name, ent := range r.catalog {
		out = append(out, ModelInfo{Name: name, Kind: ent.kind, Classes: ent.classes,
			ImageLen: ent.imageLen, Hosts: len(ent.hosts)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Predict routes one prediction: cache lookup, bounded admission,
// consistent-hash dispatch, hedging, failover, and cache fill. timeout
// zero means the router default.
func (r *Router) Predict(ctx context.Context, model string, image []float32, timeout time.Duration) ([]float32, PredictMeta, error) {
	var meta PredictMeta
	r.mu.Lock()
	ent, ok := r.catalog[model]
	if !ok {
		r.mu.Unlock()
		requests("unknown_model").Inc()
		return nil, meta, ErrUnknownModel
	}
	imgLen, qLo, qHi := ent.imageLen, ent.quantLo, ent.quantHi
	r.mu.Unlock()
	if len(image) != imgLen {
		requests("bad_request").Inc()
		return nil, meta, fmt.Errorf("fleet: image has %d values, model %q wants %d", len(image), model, imgLen)
	}
	if timeout <= 0 || timeout > r.cfg.RequestTimeout {
		timeout = r.cfg.RequestTimeout
	}
	start := time.Now()

	var key string
	if r.cache != nil {
		q := QuantizeImage(nil, image, qLo, qHi)
		key = Key(model, q)
		if scores := r.cache.Get(key); scores != nil {
			cacheHits.Inc()
			requests("cached").Inc()
			meta.Cached = true
			r.observeLatency(model, start)
			return scores, meta, nil
		}
		cacheMisses.Inc()
		// Canonicalize: serve the grid point the key names, so every
		// request sharing this key computes — and caches — identical
		// bytes.
		image = DequantizeImage(nil, q, qLo, qHi)
	}

	select {
	case r.inflight <- struct{}{}:
	default:
		requests("rejected").Inc()
		return nil, meta, ErrOverloaded
	}
	routerInflight.Set(float64(len(r.inflight)))
	defer func() {
		<-r.inflight
		routerInflight.Set(float64(len(r.inflight)))
	}()

	c := &call{
		done:     make(chan callResult, 1),
		tried:    make(map[int]bool),
		model:    model,
		image:    image,
		budgetMS: uint32(timeout / time.Millisecond),
	}
	if err := r.dispatch(c, false); err != nil {
		requests("no_worker").Inc()
		return nil, meta, err
	}

	overall := time.NewTimer(timeout)
	defer overall.Stop()
	var hedgeCh <-chan time.Time
	if r.cfg.Hedge {
		ht := time.NewTimer(r.hedgeDelay(model))
		defer ht.Stop()
		hedgeCh = ht.C
	}
	for {
		select {
		case res := <-c.done:
			r.mu.Lock()
			meta.Attempts = c.attempts
			r.mu.Unlock()
			meta.WorkerID = res.workerID
			meta.BatchSize = res.batchSize
			if res.code != 0 {
				return nil, meta, r.failCall(c, res)
			}
			requests("completed").Inc()
			r.observeLatency(model, start)
			if r.cache != nil {
				r.cache.Put(key, res.scores)
			}
			return res.scores, meta, nil
		case <-hedgeCh:
			hedgeCh = nil
			if c.finished.Load() {
				continue
			}
			if err := r.dispatch(c, false); err == nil {
				hedges.Inc()
				meta.Hedged = true
			}
		case <-ctx.Done():
			r.abandon(c)
			requests("canceled").Inc()
			return nil, meta, ctx.Err()
		case <-overall.C:
			r.abandon(c)
			requests("expired").Inc()
			return nil, meta, ErrDeadlineExceeded
		}
	}
}

// failCall maps a terminal worker error onto the router's error set.
func (r *Router) failCall(c *call, res callResult) error {
	switch res.code {
	case errCodeExpired:
		requests("expired").Inc()
		return ErrDeadlineExceeded
	case errCodeOverloaded:
		requests("rejected").Inc()
		return ErrOverloaded
	default:
		requests("failed").Inc()
		return fmt.Errorf("fleet: worker %d: %s", res.workerID, res.msg)
	}
}

// abandon marks a call finished so late results are dropped, and
// forgets its attempts.
func (r *Router) abandon(c *call) {
	c.finished.Store(true)
	r.mu.Lock()
	for id, att := range r.attempts {
		if att.c == c {
			delete(r.attempts, id)
		}
	}
	r.mu.Unlock()
}

// latWindow is a small sliding window of recent request latencies per
// model, feeding the hedge deadline.
type latWindow struct {
	buf [512]float64
	n   int
	idx int
}

func (r *Router) observeLatency(model string, start time.Time) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	routerLatencyMs.Observe(ms)
	r.latMu.Lock()
	w, ok := r.lat[model]
	if !ok {
		w = &latWindow{}
		r.lat[model] = w
	}
	w.buf[w.idx] = ms
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	r.latMu.Unlock()
}

// hedgeDelay computes the hedge deadline for model from its recent
// latency quantile: max(HedgeMin, HedgeFactor * q). With no history it
// falls back to HedgeMin — eager hedging while the window fills is
// harmless because the hedge only fires for requests that are already
// slow.
func (r *Router) hedgeDelay(model string) time.Duration {
	r.latMu.Lock()
	w, ok := r.lat[model]
	var sample []float64
	if ok && w.n > 0 {
		sample = append(sample, w.buf[:w.n]...)
	}
	r.latMu.Unlock()
	d := r.cfg.HedgeMin
	if len(sample) > 0 {
		sort.Float64s(sample)
		idx := int(r.cfg.HedgeQuantile * float64(len(sample)))
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		q := time.Duration(sample[idx] * float64(time.Millisecond))
		if hd := time.Duration(r.cfg.HedgeFactor * float64(q)); hd > d {
			d = hd
		}
	}
	return d
}

// CacheStats reports the response cache's occupancy.
func (r *Router) CacheStats() (entries, bytes int) {
	return r.cache.Len(), r.cache.Bytes()
}
