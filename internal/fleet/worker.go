package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/appmult/retrain/internal/dist"
	"github.com/appmult/retrain/internal/obs"
	"github.com/appmult/retrain/internal/serve"
)

// WorkerConfig parameterizes NewWorker.
type WorkerConfig struct {
	// Router is the router's fleet TCP address.
	Router string
	// Models are the serve specs this worker hosts. Every model is
	// loaded warm before the first dial, so the worker registers only
	// capacity it can actually serve.
	Models []serve.Spec
	// QuantLo and QuantHi span the uint8 input grid announced to the
	// router for response caching: the router canonicalizes cached
	// models' inputs onto this grid before dispatch (defaults -3..3,
	// covering the normalized image distribution).
	QuantLo, QuantHi float32
	// Autoscale configures the worker-local per-model replica
	// autoscaler.
	Autoscale AutoscaleConfig
	// Dial is the backoff policy for failed dials and reconnects.
	Dial dist.Backoff
	// MaxDialAttempts gives up after this many consecutive dial
	// failures; 0 retries forever (a restarting router picks the worker
	// back up).
	MaxDialAttempts int
	// DialTimeout bounds one dial (default 3s).
	DialTimeout time.Duration
	// HeartbeatTimeout is the read-idle limit: the router pings well
	// inside it, so a read stalled this long means the connection is
	// dead (default 15s).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// Seed randomizes backoff jitter.
	Seed int64
	// Logf, when non-nil, receives progress and failure lines.
	Logf func(format string, args ...any)
	// WrapConn, when non-nil, wraps every dialed connection; tests use
	// it to interpose fault injectors and targeted kills.
	WrapConn func(net.Conn) net.Conn
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.QuantLo == 0 && c.QuantHi == 0 {
		c.QuantLo, c.QuantHi = -3, 3
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Worker hosts warm serve replicas and computes predictions for the
// router. Build one with NewWorker, then drive it with Run.
type Worker struct {
	cfg    WorkerConfig
	models map[string]*serve.Model
	order  []string
}

// NewWorker loads every configured model into warm replicas. Loading
// happens once, before the first dial — reconnects re-register the
// already-warm set, which is what makes a worker restart cheap and a
// router restart invisible.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("fleet: worker needs at least one model")
	}
	w := &Worker{cfg: cfg, models: make(map[string]*serve.Model, len(cfg.Models))}
	for _, spec := range cfg.Models {
		m, err := serve.Load(spec)
		if err != nil {
			return nil, err
		}
		name := m.Spec().Name
		if _, dup := w.models[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate model name %q", name)
		}
		w.models[name] = m
		w.order = append(w.order, name)
		mm := m
		obs.Default().GaugeFunc("fleet_model_replicas",
			"Live inference replicas per hosted model on this worker.",
			func() float64 { return float64(mm.Replicas()) }, "model", name)
	}
	return w, nil
}

// Model returns a hosted model by name (nil when absent) — used by
// tests to compare fleet answers against direct computes.
func (w *Worker) Model(name string) *serve.Model { return w.models[name] }

// Run joins the router and serves predict frames until dismissed
// (Bye → nil return), the context is cancelled, or the dial budget is
// exhausted. Connection loss at any other point re-enters the dial
// loop with exponential backoff; the router re-registers the model set
// on readmission and fails outstanding requests over to surviving
// replicas in the meantime. Run also starts the per-model autoscalers
// for its lifetime.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if w.cfg.Autoscale.Enabled {
		for _, name := range w.order {
			go runAutoscaler(ctx, w.models[name], w.cfg.Autoscale, w.cfg.Logf)
		}
	}
	rng := rand.New(rand.NewSource(w.cfg.Seed))
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := net.DialTimeout("tcp", w.cfg.Router, w.cfg.DialTimeout)
		if err != nil {
			fails++
			workerDialRetries.Inc()
			if w.cfg.MaxDialAttempts > 0 && fails >= w.cfg.MaxDialAttempts {
				return fmt.Errorf("fleet: dialing %s: %d attempts, last: %w", w.cfg.Router, fails, err)
			}
			w.cfg.logf("dial %s failed (attempt %d): %v", w.cfg.Router, fails, err)
			if !w.cfg.Dial.Sleep(ctx, fails-1, rng) {
				return ctx.Err()
			}
			continue
		}
		fails = 0
		if w.cfg.WrapConn != nil {
			conn = w.cfg.WrapConn(conn)
		}
		done, err := w.serveConn(ctx, conn)
		if done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		workerReconnects.Inc()
		w.cfg.logf("session ended: %v; reconnecting", err)
		if !w.cfg.Dial.Sleep(ctx, 0, rng) {
			return ctx.Err()
		}
	}
}

// serveConn runs one connection's lifetime: handshake, register, then
// serve predict frames until the stream dies or the router dismisses
// us. done=true means dismissed.
func (w *Worker) serveConn(ctx context.Context, conn net.Conn) (done bool, err error) {
	fc := newFrameConn(conn, w.cfg.WriteTimeout, w.cfg.HeartbeatTimeout)
	defer fc.close()
	var e enc
	e.u32(ProtocolVersion)
	if err := fc.send(frameHello, e.b); err != nil {
		return false, err
	}
	t, p, err := fc.recv()
	if err != nil {
		return false, err
	}
	if t != frameWelcome {
		return false, fmt.Errorf("fleet: expected welcome, got %s", t)
	}
	d := &dec{b: p}
	if ver := d.u32(); ver != ProtocolVersion {
		return false, fmt.Errorf("fleet: router speaks protocol %d, want %d", ver, ProtocolVersion)
	}
	id := int(d.u32())
	if err := d.err(); err != nil {
		return false, err
	}
	if err := fc.send(frameRegister, w.encodeRegister()); err != nil {
		return false, err
	}
	w.cfg.logf("worker %d: joined %s hosting %v", id, w.cfg.Router, w.order)

	// The context watcher closes the connection so a cancelled worker
	// unblocks even mid-read.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			fc.close()
		case <-stop:
		}
	}()

	for {
		t, p, err := fc.recv()
		if err != nil {
			return false, err
		}
		switch t {
		case framePing:
			cp := append([]byte(nil), p...)
			if err := fc.send(framePong, cp); err != nil {
				return false, err
			}
		case framePredict:
			req, perr := decodePredict(p)
			if perr != nil {
				return false, perr
			}
			go w.handlePredict(ctx, fc, req)
		case frameBye:
			w.cfg.logf("worker %d: dismissed", id)
			return true, nil
		default:
			return false, fmt.Errorf("fleet: unexpected %s frame", t)
		}
	}
}

// encodeRegister describes the hosted model set: per model its name,
// kind, classes, flattened input length, and the canonical quantization
// grid for caching.
func (w *Worker) encodeRegister() []byte {
	var e enc
	e.u32(uint32(len(w.order)))
	for _, name := range w.order {
		m := w.models[name]
		sp := m.Spec()
		e.str(name)
		e.str(sp.Kind)
		e.u32(uint32(sp.Classes))
		e.u32(uint32(m.ImageLen()))
		e.f32(w.cfg.QuantLo)
		e.f32(w.cfg.QuantHi)
	}
	return e.b
}

// predictReq is one decoded predict frame.
type predictReq struct {
	id       uint64
	model    string
	budgetMS uint32
	image    []float32
}

func decodePredict(p []byte) (predictReq, error) {
	d := &dec{b: p}
	req := predictReq{
		id:       d.u64(),
		model:    d.str(),
		budgetMS: d.u32(),
		image:    d.f32s(), // copies out of the recv buffer
	}
	return req, d.err()
}

// handlePredict serves one request through the model's micro-batching
// queue and answers with a result or error frame. It runs on its own
// goroutine: predictions for different requests batch together inside
// serve while the frame reader keeps draining the connection.
func (w *Worker) handlePredict(ctx context.Context, fc *frameConn, req predictReq) {
	m, ok := w.models[req.model]
	if !ok {
		w.sendError(fc, req.id, errCodeBadRequest, fmt.Sprintf("unknown model %q", req.model))
		return
	}
	if len(req.image) != m.ImageLen() {
		w.sendError(fc, req.id, errCodeBadRequest,
			fmt.Sprintf("image has %d values, model %q wants %d", len(req.image), req.model, m.ImageLen()))
		return
	}
	var deadline time.Time
	if req.budgetMS > 0 {
		deadline = time.Now().Add(time.Duration(req.budgetMS) * time.Millisecond)
	}
	res := m.Batcher().Do(ctx, req.image, deadline)
	if res.Err != nil {
		code := uint8(errCodeInternal)
		switch res.Err {
		case serve.ErrOverloaded, serve.ErrDraining:
			code = errCodeOverloaded
		case serve.ErrDeadlineExceeded:
			code = errCodeExpired
		}
		w.sendError(fc, req.id, code, res.Err.Error())
		return
	}
	var e enc
	e.u64(req.id)
	e.u32(uint32(res.BatchSize))
	e.f32s(res.Scores)
	workerPredicts.Inc()
	fc.send(frameResult, e.b) // a failed send tears the session down via the reader
}

func (w *Worker) sendError(fc *frameConn, id uint64, code uint8, msg string) {
	var e enc
	e.u64(id)
	e.u8(code)
	e.str(msg)
	fc.send(frameError, e.b)
}

// Drain gracefully drains every hosted model's batcher.
func (w *Worker) Drain(ctx context.Context) error {
	var first error
	for _, name := range w.order {
		if err := w.models[name].Batcher().Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
