package fleet

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipeConns returns a connected frameConn pair over an in-memory pipe.
func pipeConns(t *testing.T) (*frameConn, *frameConn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return newFrameConn(a, time.Second, time.Second), newFrameConn(b, time.Second, time.Second)
}

func TestFrameRoundTrip(t *testing.T) {
	fa, fb := pipeConns(t)
	payloads := [][]byte{[]byte("hello fleet"), nil, make([]byte, 1<<15)}
	for i := range payloads[2] {
		payloads[2][i] = byte(i * 7)
	}
	go func() {
		for i, p := range payloads {
			if err := fa.send(frameType(i+1), p); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	}()
	for i, want := range payloads {
		ft, p, err := fb.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ft != frameType(i+1) || len(p) != len(want) {
			t.Fatalf("frame %d: type %s len %d, want type %s len %d", i, ft, len(p), frameType(i+1), len(want))
		}
		for j := range want {
			if p[j] != want[j] {
				t.Fatalf("frame %d byte %d: %d != %d", i, j, p[j], want[j])
			}
		}
	}
}

func TestFrameConcurrentSenders(t *testing.T) {
	fa, fb := pipeConns(t)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var e enc
			e.u64(uint64(i))
			fa.send(frameResult, e.b)
		}(i)
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		ft, p, err := fb.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ft != frameResult {
			t.Fatalf("got %s frame", ft)
		}
		d := &dec{b: p}
		v := d.u64()
		if d.err() != nil || seen[v] {
			t.Fatalf("frame %d: value %d (dup=%v, err=%v)", i, v, seen[v], d.err())
		}
		seen[v] = true
	}
	wg.Wait()
}

// tamperConn flips one byte at a chosen frame offset on its way through.
type tamperConn struct {
	net.Conn
	offset int64
	pos    int64
}

func (c *tamperConn) Write(b []byte) (int, error) {
	mod := append([]byte(nil), b...)
	if c.offset >= c.pos && c.offset < c.pos+int64(len(b)) {
		mod[c.offset-c.pos] ^= 0x40
	}
	c.pos += int64(len(b))
	return c.Conn.Write(mod)
}

func TestFrameCorruptionDetected(t *testing.T) {
	cases := []struct {
		name   string
		offset int64 // byte to flip in the first frame
		want   string
	}{
		{"magic", 2, "magic"},
		{"seq", 9, "seq"},
		{"payload", frameHeaderLen + 1, "CRC"},
		{"crc", frameHeaderLen + 5, "CRC"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := net.Pipe()
			defer a.Close()
			defer b.Close()
			fa := newFrameConn(&tamperConn{Conn: a, offset: tc.offset}, time.Second, time.Second)
			fb := newFrameConn(b, time.Second, time.Second)
			go fa.send(framePredict, []byte("payload"))
			_, _, err := fb.recv()
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFramePayloadCapEnforced(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fb := newFrameConn(b, time.Second, time.Second)
	// Hand-build a header declaring an absurd payload length.
	hdr := make([]byte, frameHeaderLen)
	copy(hdr, frameMagic[:])
	hdr[16] = byte(framePredict)
	hdr[17], hdr[18], hdr[19], hdr[20] = 0xff, 0xff, 0xff, 0x7f
	go a.Write(hdr)
	_, _, err := fb.recv()
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversized length accepted: %v", err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e enc
	e.u8(7)
	e.u32(1 << 30)
	e.u64(1 << 60)
	e.f32(-1.5)
	e.f32s([]float32{0, 1.25, -3e7})
	e.str("model-a")
	e.bytes([]byte{9, 8})

	d := &dec{b: e.b}
	if d.u8() != 7 || d.u32() != 1<<30 || d.u64() != 1<<60 || d.f32() != -1.5 {
		t.Fatal("scalar round trip failed")
	}
	fs := d.f32s()
	if len(fs) != 3 || fs[1] != 1.25 {
		t.Fatalf("f32s round trip: %v", fs)
	}
	if d.str() != "model-a" {
		t.Fatal("str round trip failed")
	}
	if bs := d.bytes(); len(bs) != 2 || bs[0] != 9 {
		t.Fatalf("bytes round trip: %v", bs)
	}
	if err := d.err(); err != nil {
		t.Fatalf("clean payload decodes with error: %v", err)
	}
}

func TestDecMalformedAndTrailing(t *testing.T) {
	// Truncated string length: sticky failure.
	var e enc
	e.u32(1000) // claims 1000 bytes follow
	d := &dec{b: e.b}
	if s := d.str(); s != "" {
		t.Fatalf("truncated str decoded as %q", s)
	}
	if d.err() == nil {
		t.Fatal("truncated payload decoded cleanly")
	}
	// After failure every accessor stays zero.
	if d.u64() != 0 || d.f32() != 0 {
		t.Fatal("sticky failure not sticky")
	}

	// Trailing bytes are an error too.
	var e2 enc
	e2.u8(1)
	e2.u8(2)
	d2 := &dec{b: e2.b}
	d2.u8()
	if d2.err() == nil {
		t.Fatal("trailing byte not reported")
	}
}
