package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/appmult/retrain/internal/dist"
	"github.com/appmult/retrain/internal/serve"
)

// fleetSpec is the small deterministic model every e2e test serves:
// same seed everywhere, so every worker holds bit-identical weights.
func fleetSpec(maxDelay time.Duration) serve.Spec {
	return serve.Spec{Name: "m", Kind: "lenet", Classes: 3, InputHW: 8, Width: 0.08,
		MaxBatch: 8, MaxDelay: maxDelay, Replicas: 1, Seed: 7}
}

func testImage(rng *rand.Rand) []float32 {
	img := make([]float32, 3*8*8)
	for i := range img {
		img[i] = rng.Float32()*2 - 1
	}
	return img
}

// startWorker launches a worker joining addr and returns its cancel
// func plus a channel closed when Run returns.
func startWorker(t *testing.T, cfg WorkerConfig) (context.CancelFunc, chan struct{}) {
	t.Helper()
	cfg.Dial = dist.Backoff{Base: 10 * time.Millisecond, Jitter: -1}
	if cfg.MaxDialAttempts == 0 {
		cfg.MaxDialAttempts = 50
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return cancel, done
}

func startRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestFleetEndToEndAndCacheBitIdentity(t *testing.T) {
	r := startRouter(t, RouterConfig{CacheBytes: 1 << 20})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	if err := r.AwaitWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	img := testImage(rng)
	ctx := context.Background()

	fresh, meta, err := r.Predict(ctx, "m", img, 0)
	if err != nil {
		t.Fatalf("fresh predict: %v", err)
	}
	if meta.Cached || len(fresh) != 3 {
		t.Fatalf("fresh predict: cached=%v scores=%v", meta.Cached, fresh)
	}

	// Same image again: a cache hit, bit-identical to the fresh compute.
	hit, meta2, err := r.Predict(ctx, "m", img, 0)
	if err != nil {
		t.Fatalf("repeat predict: %v", err)
	}
	if !meta2.Cached {
		t.Fatal("repeat of an identical image missed the cache")
	}
	for i := range fresh {
		if math.Float32bits(fresh[i]) != math.Float32bits(hit[i]) {
			t.Fatalf("cache hit differs at %d: %x vs %x", i, math.Float32bits(fresh[i]), math.Float32bits(hit[i]))
		}
	}

	// A nearby image inside the same quantization cell shares the key —
	// and because the router canonicalizes inputs onto the grid before
	// dispatch, its answer is the same bytes whether it hits or computes.
	near := append([]float32(nil), img...)
	near[0] += 0.001 // grid step is 6/255 ≈ 0.024
	nearScores, meta3, err := r.Predict(ctx, "m", near, 0)
	if err != nil {
		t.Fatalf("near predict: %v", err)
	}
	if !meta3.Cached {
		t.Fatal("neighbor inside the grid cell missed the cache")
	}
	for i := range fresh {
		if math.Float32bits(fresh[i]) != math.Float32bits(nearScores[i]) {
			t.Fatalf("neighbor hit differs at %d", i)
		}
	}

	// A genuinely different image computes fresh.
	if _, meta4, err := r.Predict(ctx, "m", testImage(rng), 0); err != nil || meta4.Cached {
		t.Fatalf("distinct image: err=%v cached=%v", err, meta4.Cached)
	}

	// Error paths.
	if _, _, err := r.Predict(ctx, "nope", img, 0); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, _, err := r.Predict(ctx, "m", img[:5], 0); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestFleetWorkerKillFailoverNoLostResponses(t *testing.T) {
	beforeFailovers := failovers.Value()
	r := startRouter(t, RouterConfig{
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 300 * time.Millisecond,
	})

	// Worker 1's connection is held so the test can sever it abruptly —
	// the moral equivalent of kill -9 mid-request.
	var w1conn atomic.Pointer[net.Conn]
	cancel1, done1 := startWorker(t, WorkerConfig{
		Router: r.Addr(),
		// A long straggler window keeps requests in flight on the worker,
		// so the kill lands while work is genuinely outstanding.
		Models: []serve.Spec{fleetSpec(60 * time.Millisecond)},
		WrapConn: func(c net.Conn) net.Conn {
			w1conn.Store(&c)
			return c
		},
	})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	if err := r.AwaitWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const n = 24
	rng := rand.New(rand.NewSource(13))
	images := make([][]float32, n)
	for i := range images {
		images[i] = testImage(rng)
	}
	var wg sync.WaitGroup
	results := make([]error, n)
	answered := make([]int32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := r.Predict(context.Background(), "m", images[i], 0)
			atomic.AddInt32(&answered[i], 1)
			results[i] = err
		}(i)
	}

	// Let the router spread the requests, then kill worker 1 while its
	// 60ms batch window still holds roughly half of them.
	time.Sleep(20 * time.Millisecond)
	cancel1()
	if cp := w1conn.Load(); cp != nil {
		(*cp).Close()
	}
	wg.Wait()
	<-done1

	for i, err := range results {
		if err != nil {
			t.Errorf("request %d lost across the kill: %v", i, err)
		}
		if got := atomic.LoadInt32(&answered[i]); got != 1 {
			t.Errorf("request %d answered %d times", i, got)
		}
	}
	if got := failovers.Value() - beforeFailovers; got < 1 {
		t.Errorf("fleet_failover_total rose by %v, want >= 1", got)
	}
	if r.Workers() != 1 {
		t.Errorf("router still counts %d workers after the kill", r.Workers())
	}
}

// laggedConn delays every write once armed, simulating a worker whose
// responses straggle without being dead.
type laggedConn struct {
	net.Conn
	armed *atomic.Bool
	delay time.Duration
}

func (c *laggedConn) Write(b []byte) (int, error) {
	if c.armed.Load() {
		time.Sleep(c.delay)
	}
	return c.Conn.Write(b)
}

func TestFleetHedgingTrimsSlowReplica(t *testing.T) {
	beforeHedges, beforeWins := hedges.Value(), hedgeWins.Value()
	r := startRouter(t, RouterConfig{
		Hedge:    true,
		HedgeMin: 10 * time.Millisecond,
	})
	var lag atomic.Bool
	startWorker(t, WorkerConfig{
		Router: r.Addr(),
		Models: []serve.Spec{fleetSpec(time.Millisecond)},
		WrapConn: func(c net.Conn) net.Conn {
			return &laggedConn{Conn: c, armed: &lag, delay: 200 * time.Millisecond}
		},
	})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	if err := r.AwaitWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lag.Store(true)

	rng := rand.New(rand.NewSource(17))
	sawHedge := false
	for i := 0; i < 8; i++ {
		start := time.Now()
		_, meta, err := r.Predict(context.Background(), "m", testImage(rng), 0)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if meta.Hedged {
			sawHedge = true
			// A hedged request must not have waited out the slow
			// replica's full 200ms lag.
			if d := time.Since(start); d > 150*time.Millisecond {
				t.Errorf("hedged request %d still took %s", i, d)
			}
		}
	}
	if !sawHedge {
		t.Error("no request reported hedging against a 200ms-lagged replica")
	}
	if hedges.Value() <= beforeHedges {
		t.Error("fleet_hedges_total did not rise")
	}
	if hedgeWins.Value() <= beforeWins {
		t.Error("fleet_hedge_wins_total did not rise")
	}
}

func TestFleetHTTPHandler(t *testing.T) {
	r := startRouter(t, RouterConfig{CacheBytes: 1 << 20})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	if err := r.AwaitWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(19))
	body, _ := json.Marshal(PredictRequest{Image: testImage(rng)}) // model elided: single-model fleet
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "m" || len(pr.Scores) != 3 || pr.Attempts != 1 {
		t.Fatalf("predict response %+v", pr)
	}

	for _, path := range []string{"/v1/models", "/healthz", "/fleetz", "/metrics"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}

func TestFleetWorkerReconnectsAfterRouterRestart(t *testing.T) {
	r := startRouter(t, RouterConfig{})
	startWorker(t, WorkerConfig{Router: r.Addr(), Models: []serve.Spec{fleetSpec(time.Millisecond)}})
	if err := r.AwaitWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	addr := r.Addr()
	// Crash the router abruptly: no Bye frame (that would be a clean
	// dismissal), just dead sockets — the worker must redial.
	r.ln.Close()
	r.mu.Lock()
	for _, w := range r.workers {
		w.fc.close()
	}
	r.mu.Unlock()

	// A new router on the same address picks the worker back up.
	r2, err := NewRouter(RouterConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.AwaitWorkers(1, 10*time.Second); err != nil {
		t.Fatalf("worker never rejoined: %v", err)
	}
	rng := rand.New(rand.NewSource(23))
	if _, _, err := r2.Predict(context.Background(), "m", testImage(rng), 0); err != nil {
		t.Fatalf("predict after rejoin: %v", err)
	}
}

func TestFleetAutoscaleGrowsUnderLoad(t *testing.T) {
	spec := fleetSpec(time.Millisecond)
	spec.QueueDepth = 8
	spec.MaxReplicas = 3
	r := startRouter(t, RouterConfig{MaxInflight: 64})
	startWorker(t, WorkerConfig{
		Router: r.Addr(),
		Models: []serve.Spec{spec},
		Autoscale: AutoscaleConfig{
			Enabled:     true,
			Interval:    10 * time.Millisecond,
			MaxReplicas: 3,
			UpQueueFrac: 0.25,
		},
	})
	if err := r.AwaitWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		img := testImage(rng)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Predict(context.Background(), "m", img, 0)
				}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	before := autoscaleEvents("m", "up").Value()
	grew := false
	for time.Now().Before(deadline) {
		if autoscaleEvents("m", "up").Value() > before {
			grew = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !grew {
		t.Error("autoscaler never added a replica under sustained queue pressure")
	}
}
