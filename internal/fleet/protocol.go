// Package fleet is the distributed multi-node serving tier: a router
// that fronts client HTTP traffic and a set of worker processes that
// host warm internal/serve replicas, speaking a compact length-prefixed
// binary frame protocol (FLTFRv1, modeled on internal/dist's DSTFRv1).
//
// The router owns the fleet-wide request path: consistent-hash routing
// by model name over per-model replica sets, bounded admission, request
// hedging to a warm standby once a request outlives the model's recent
// latency percentile, failover of in-flight requests when a worker's
// heartbeat lapses, and a size-bounded exact-match LRU response cache
// keyed on the quantized input bytes — quantized uint8 inputs make two
// nearby images collapse onto the same grid point, so exact-match
// caching is genuinely effective for this workload. Workers register
// their model set on join, serve predict frames through their local
// micro-batching queues, and autoscale their per-model replica counts
// from the live serve_* gauges in internal/obs.
//
// See docs/fleet-protocol.md for the wire format and the
// routing/hedging/failover state machine.
package fleet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// ProtocolVersion is the frame-protocol generation carried in
// Hello/Welcome. A router refuses workers speaking a different
// version.
const ProtocolVersion = 1

// frameMagic opens every frame: ASCII tag + version + newline, so a
// stray connection or a desynchronized stream is detected on the first
// 8 bytes.
var frameMagic = [8]byte{'F', 'L', 'T', 'F', 'R', 'v', '1', '\n'}

// maxFramePayload bounds a frame's declared payload length so a
// corrupt length field cannot make the receiver allocate gigabytes
// before the CRC check catches it. Predict frames carry one image
// (a few KiB); 64 MiB is far above any request this tier routes.
const maxFramePayload = 1 << 26

// frameType tags a frame's payload schema.
type frameType uint8

// Frame types. Payload layouts are specified in docs/fleet-protocol.md;
// encode/decode helpers live next to their users in router.go and
// worker.go.
const (
	frameHello    frameType = iota + 1 // worker → router: protocol version
	frameWelcome                       // router → worker: worker id
	frameRegister                      // worker → router: hosted model set
	framePredict                       // router → worker: one prediction request
	frameResult                        // worker → router: scores for one request
	frameError                         // worker → router: failure for one request
	framePing                          // router → worker: liveness probe
	framePong                          // worker → router: liveness answer + load report
	frameBye                           // router → worker: dismissed, disconnect
)

func (t frameType) String() string {
	names := [...]string{"?", "hello", "welcome", "register", "predict",
		"result", "error", "ping", "pong", "bye"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Worker-reported error codes carried in frameError payloads. The
// router maps them onto retry decisions and HTTP statuses.
const (
	errCodeOverloaded = 1 // worker queue full — retry on another replica
	errCodeBadRequest = 2 // malformed request — not retryable
	errCodeInternal   = 3 // inference failure — retryable elsewhere
	errCodeExpired    = 4 // deadline passed while queued — not retryable
)

// frameConn frames a net.Conn: each frame is
//
//	magic[8] | seq u64 | type u8 | length u32 | payload | crc32 u32
//
// with the CRC (IEEE, as in TRCKPv1) covering every preceding byte of
// the frame. The per-direction sequence number starts at 0 and
// increments per frame, so a silently dropped frame is detected at the
// next frame's seq check, and a truncated frame is detected as a magic
// mismatch mid-stream. Every send issues exactly one Write, so the
// faults.NetFaultModel injector operates per-frame. Any framing
// violation is terminal for the connection: the worker redials and
// re-registers; the router fails its in-flight requests over to the
// surviving replicas.
type frameConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu  sync.Mutex
	wseq uint64
	wbuf []byte

	rseq uint64
	rbuf []byte

	writeTimeout time.Duration
	readTimeout  time.Duration
}

func newFrameConn(c net.Conn, writeTimeout, readTimeout time.Duration) *frameConn {
	return &frameConn{
		c:            c,
		br:           bufio.NewReaderSize(c, 1<<16),
		writeTimeout: writeTimeout,
		readTimeout:  readTimeout,
	}
}

const frameHeaderLen = 8 + 8 + 1 + 4 // magic + seq + type + length

// send frames payload and writes it with a single Write call. It is
// safe for concurrent use: responders for different requests share one
// connection back to the router.
func (fc *frameConn) send(t frameType, payload []byte) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	total := frameHeaderLen + len(payload) + 4
	if cap(fc.wbuf) < total {
		fc.wbuf = make([]byte, total)
	}
	b := fc.wbuf[:total]
	copy(b, frameMagic[:])
	binary.LittleEndian.PutUint64(b[8:], fc.wseq)
	b[16] = byte(t)
	binary.LittleEndian.PutUint32(b[17:], uint32(len(payload)))
	copy(b[frameHeaderLen:], payload)
	crc := crc32.ChecksumIEEE(b[:frameHeaderLen+len(payload)])
	binary.LittleEndian.PutUint32(b[frameHeaderLen+len(payload):], crc)
	if fc.writeTimeout > 0 {
		fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout))
	}
	if _, err := fc.c.Write(b); err != nil {
		frameErrors("io").Inc()
		return err
	}
	fc.wseq++
	framesSent.Inc()
	frameBytesSent.Add(float64(total))
	return nil
}

// recv reads and validates one frame, returning its type and payload.
// The payload slice is reused across calls: decode (or copy) before
// the next recv. recv must be called from a single goroutine per
// connection.
func (fc *frameConn) recv() (frameType, []byte, error) {
	if fc.readTimeout > 0 {
		fc.c.SetReadDeadline(time.Now().Add(fc.readTimeout))
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fc.br, hdr[:]); err != nil {
		frameErrors("io").Inc()
		return 0, nil, err
	}
	if [8]byte(hdr[:8]) != frameMagic {
		frameErrors("magic").Inc()
		return 0, nil, fmt.Errorf("fleet: bad frame magic %q (stream desynchronized)", hdr[:8])
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	if seq != fc.rseq {
		frameErrors("seq").Inc()
		return 0, nil, fmt.Errorf("fleet: frame seq %d, want %d (frame lost)", seq, fc.rseq)
	}
	t := frameType(hdr[16])
	plen := binary.LittleEndian.Uint32(hdr[17:])
	if plen > maxFramePayload {
		frameErrors("length").Inc()
		return 0, nil, fmt.Errorf("fleet: frame payload %d exceeds cap", plen)
	}
	need := int(plen) + 4
	if cap(fc.rbuf) < need {
		fc.rbuf = make([]byte, need)
	}
	body := fc.rbuf[:need]
	if _, err := io.ReadFull(fc.br, body); err != nil {
		frameErrors("io").Inc()
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:plen])
	if crc != binary.LittleEndian.Uint32(body[plen:]) {
		frameErrors("crc").Inc()
		return 0, nil, fmt.Errorf("fleet: frame %s seq %d failed CRC", t, seq)
	}
	fc.rseq++
	framesRecv.Inc()
	frameBytesRecv.Add(float64(frameHeaderLen + need))
	return t, body[:plen], nil
}

func (fc *frameConn) close() error { return fc.c.Close() }

// enc builds a frame payload. All integers are little-endian, matching
// the TRCKPv1 checkpoint conventions.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f32(v float32) {
	e.u32(math.Float32bits(v))
}
func (e *enc) f32s(vs []float32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(math.Float32bits(v))
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// dec reads a frame payload with sticky error handling: after the
// first short read every accessor returns zero values and err() tells
// the caller the payload was malformed. All length fields are bounds-
// checked against the remaining payload before allocation.
type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) take(n int) []byte {
	if d.fail || n < 0 || d.off+n > len(d.b) {
		d.fail = true
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}
func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (d *dec) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *dec) f32s() []float32 {
	n := int(d.u32())
	s := d.take(4 * n)
	if s == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[4*i:]))
	}
	return out
}
func (d *dec) str() string {
	n := int(d.u32())
	s := d.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}
func (d *dec) bytes() []byte {
	n := int(d.u32())
	return d.take(n)
}

// err reports whether decoding consumed malformed or missing bytes; a
// complete decode must also have consumed the whole payload.
func (d *dec) err() error {
	if d.fail {
		return fmt.Errorf("fleet: malformed frame payload (offset %d of %d)", d.off, len(d.b))
	}
	if d.off != len(d.b) {
		return fmt.Errorf("fleet: frame payload has %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}
