package fleet

import (
	"fmt"
	"math"
	"testing"
)

func TestQuantizeCanonicalizes(t *testing.T) {
	lo, hi := float32(-3), float32(3)
	img := []float32{-3, 0, 3, -10, 10, float32(math.NaN()), 0.004}
	q := QuantizeImage(nil, img, lo, hi)
	if q[0] != 0 || q[2] != 255 {
		t.Fatalf("range endpoints quantized to %d, %d; want 0, 255", q[0], q[2])
	}
	if q[3] != 0 || q[4] != 255 {
		t.Fatalf("out-of-range values not clamped: %d, %d", q[3], q[4])
	}
	if q[5] != 0 {
		t.Fatalf("NaN quantized to %d, want 0", q[5])
	}

	// Canonicalization is idempotent: re-quantizing the dequantized
	// image reproduces the same bytes, so a cached model's key is a
	// fixed point — the property bit-identical cache hits rest on.
	canon := DequantizeImage(nil, q, lo, hi)
	q2 := QuantizeImage(nil, canon, lo, hi)
	for i := range q {
		if q[i] != q2[i] {
			t.Fatalf("canonicalization not idempotent at %d: %d -> %d", i, q[i], q2[i])
		}
	}

	// Two nearby inputs inside the same grid cell share a key.
	a := QuantizeImage(nil, []float32{1.0}, lo, hi)
	b := QuantizeImage(nil, []float32{1.002}, lo, hi)
	if a[0] != b[0] {
		t.Fatalf("neighbors split across grid cells: %d vs %d", a[0], b[0])
	}
}

func TestCacheLRUAndBudget(t *testing.T) {
	entry := func(i int) (string, []float32) {
		return Key("m", []byte(fmt.Sprintf("img-%03d", i))), []float32{float32(i), 0, 0, 0}
	}
	k0, s0 := entry(0)
	per := (&cacheEntry{key: k0, scores: s0}).bytes()
	c := NewCache(4 * per) // room for exactly 4 entries

	for i := 0; i < 5; i++ {
		k, s := entry(i)
		c.Put(k, s)
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	if c.Bytes() > 4*per {
		t.Fatalf("cache holds %d bytes, budget %d", c.Bytes(), 4*per)
	}
	if got := c.Get(k0); got != nil {
		t.Fatalf("oldest entry survived eviction: %v", got)
	}

	// Touching an entry shields it from the next eviction.
	k1, _ := entry(1)
	if c.Get(k1) == nil {
		t.Fatal("entry 1 missing before touch test")
	}
	k5, s5 := entry(5)
	c.Put(k5, s5)
	if c.Get(k1) == nil {
		t.Fatal("recently used entry evicted ahead of older ones")
	}
	k2, _ := entry(2)
	if c.Get(k2) != nil {
		t.Fatal("LRU victim (entry 2) survived")
	}

	// Stored scores are copies and exact.
	if got := c.Get(k5); len(got) != 4 || got[0] != 5 {
		t.Fatalf("entry 5 scores = %v", got)
	}

	// An entry larger than the whole budget is refused.
	c.Put(Key("m", []byte("huge")), make([]float32, per))
	if c.Len() != 4 {
		t.Fatalf("oversized entry changed cache to %d entries", c.Len())
	}
}

func TestCacheNilIsDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("NewCache(0) must return nil")
	}
	c.Put("k", []float32{1})
	if c.Get("k") != nil || c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache must be inert")
	}
}

func TestCacheKeyDisambiguates(t *testing.T) {
	// Model name and payload cannot collide across the separator.
	if Key("a", []byte("bc")) == Key("ab", []byte("c")) {
		t.Fatal("keys for different (model, input) pairs collide")
	}
}
