package fleet

import (
	"container/list"
	"math"
	"sync"
)

// QuantizeImage maps a float image onto the uint8 grid spanning
// [lo, hi]: 256 evenly spaced levels, values clamped to the range, NaN
// pinned to the bottom level. The returned bytes are both the cache
// key material and — via DequantizeImage — the canonical input the
// router actually serves, so two requests with the same key are served
// bit-identically by construction. dst is reused when large enough.
func QuantizeImage(dst []byte, img []float32, lo, hi float32) []byte {
	if cap(dst) < len(img) {
		dst = make([]byte, len(img))
	}
	dst = dst[:len(img)]
	scale := float64(hi-lo) / 255
	inv := 0.0
	if scale > 0 {
		inv = 1 / scale
	}
	for i, v := range img {
		f := (float64(v) - float64(lo)) * inv
		switch {
		case math.IsNaN(f) || f < 0:
			f = 0
		case f > 255:
			f = 255
		}
		dst[i] = uint8(math.RoundToEven(f))
	}
	return dst
}

// DequantizeImage reconstructs the canonical float image from
// quantized bytes: the exact grid-point values every request with the
// same key is served with. dst is reused when large enough.
func DequantizeImage(dst []float32, q []byte, lo, hi float32) []float32 {
	if cap(dst) < len(q) {
		dst = make([]float32, len(q))
	}
	dst = dst[:len(q)]
	scale := float64(hi-lo) / 255
	for i, b := range q {
		dst[i] = float32(float64(lo) + float64(b)*scale)
	}
	return dst
}

// cacheEntry is one cached response.
type cacheEntry struct {
	key    string
	scores []float32
}

func (e *cacheEntry) bytes() int { return len(e.key) + 4*len(e.scores) + 64 }

// Cache is a size-bounded exact-match LRU response cache keyed on
// (model, quantized input bytes). Because the router canonicalizes
// every cached model's input onto the quantization grid before
// dispatch, a hit returns exactly the bytes a fresh compute of the
// same key would — hits are bit-identical, never merely close. All
// methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	ll       *list.List // front = most recent
	entries  map[string]*list.Element
}

// NewCache returns a cache bounded to maxBytes of accounted entry
// size. maxBytes <= 0 returns nil — a nil *Cache is a valid, always-
// missing cache, which is how caching is disabled.
func NewCache(maxBytes int) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{maxBytes: maxBytes, ll: list.New(), entries: make(map[string]*list.Element)}
	cacheCapacityBytes.Set(float64(maxBytes))
	return c
}

// Key builds the cache key for one request: the model name joined with
// the quantized input bytes.
func Key(model string, quantized []byte) string {
	return model + "\x00" + string(quantized)
}

// Get returns the cached scores for key, or nil. The returned slice is
// shared — callers must not mutate it.
func (c *Cache) Get(key string) []float32 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).scores
}

// Put stores scores under key, evicting least-recently-used entries
// until the byte budget holds. An entry larger than the whole budget
// is not stored. scores is copied.
func (c *Cache) Put(key string, scores []float32) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: key, scores: append([]float32(nil), scores...)}
	if e.bytes() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.curBytes += e.bytes() - old.bytes()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(e)
		c.curBytes += e.bytes()
	}
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, victim.key)
		c.curBytes -= victim.bytes()
		cacheEvictions.Inc()
	}
	cacheBytes.Set(float64(c.curBytes))
	cacheEntries.Set(float64(len(c.entries)))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the accounted size of the cache contents.
func (c *Cache) Bytes() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
