package fleet

import (
	"context"
	"time"

	"github.com/appmult/retrain/internal/obs"
	"github.com/appmult/retrain/internal/serve"
)

// AutoscaleConfig tunes the worker-local per-model replica autoscaler.
// The autoscaler reads the live serve_* queue gauges the batcher
// already exports to internal/obs — the same series /metrics scrapes —
// so its view of pressure is exactly what an operator's dashboard
// shows.
type AutoscaleConfig struct {
	// Enabled turns the autoscaler on.
	Enabled bool
	// Interval is the decision cadence (default 250ms).
	Interval time.Duration
	// MinReplicas floors scale-down (default 1).
	MinReplicas int
	// MaxReplicas caps scale-up (default: the model's Spec.MaxReplicas,
	// enforced by the batcher pool anyway).
	MaxReplicas int
	// UpQueueFrac scales up when queue depth exceeds this fraction of
	// queue capacity (default 0.5).
	UpQueueFrac float64
	// DownIdleTicks scales down after this many consecutive ticks with
	// an empty queue and every replica idle (default 8).
	DownIdleTicks int
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MinReplicas < 1 {
		c.MinReplicas = 1
	}
	if c.UpQueueFrac <= 0 {
		c.UpQueueFrac = 0.5
	}
	if c.DownIdleTicks < 1 {
		c.DownIdleTicks = 8
	}
	return c
}

// scaleDecision is the pure decision rule, split out so tests can
// drive it with synthetic observations. It returns +1 (add a replica),
// -1 (retire one), or 0, given the observed queue depth and capacity,
// the live and idle replica counts, and how many consecutive ticks the
// model has been fully idle.
func scaleDecision(cfg AutoscaleConfig, depth, capacity, live, idle, idleTicks int) int {
	if capacity > 0 && float64(depth) >= cfg.UpQueueFrac*float64(capacity) {
		if cfg.MaxReplicas > 0 && live >= cfg.MaxReplicas {
			return 0
		}
		return 1
	}
	if depth == 0 && idle >= live && live > cfg.MinReplicas && idleTicks >= cfg.DownIdleTicks {
		return -1
	}
	return 0
}

// runAutoscaler drives one model's replica count until ctx is
// cancelled: each tick it reads the model's serve_queue_depth,
// serve_queue_capacity, serve_replicas_idle, and serve_replicas_live
// gauges from the default obs registry and applies scaleDecision.
func runAutoscaler(ctx context.Context, m *serve.Model, cfg AutoscaleConfig, logf func(string, ...any)) {
	cfg = cfg.withDefaults()
	name := m.Spec().Name
	reg := obs.Default()
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	idleTicks := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		depth, _ := reg.ReadValue("serve_queue_depth", "model", name)
		capacity, _ := reg.ReadValue("serve_queue_capacity", "model", name)
		idle, _ := reg.ReadValue("serve_replicas_idle", "model", name)
		live, _ := reg.ReadValue("serve_replicas_live", "model", name)
		if depth == 0 && idle >= live {
			idleTicks++
		} else {
			idleTicks = 0
		}
		switch scaleDecision(cfg, int(depth), int(capacity), int(live), int(idle), idleTicks) {
		case 1:
			if err := m.AddReplica(); err == nil {
				autoscaleEvents(name, "up").Inc()
				if logf != nil {
					logf("autoscale %s: +1 replica (queue %d/%d) -> %d", name, int(depth), int(capacity), m.Replicas())
				}
			}
		case -1:
			if m.RemoveReplica() {
				autoscaleEvents(name, "down").Inc()
				idleTicks = 0
				if logf != nil {
					logf("autoscale %s: -1 replica (idle) -> %d", name, m.Replicas())
				}
			}
		}
	}
}
