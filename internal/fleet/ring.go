package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is the number of virtual nodes each member contributes to the
// ring. More vnodes smooth the load split and shrink the key movement
// caused by a join/leave toward the ideal 1/n at the cost of a larger
// sorted point set; 64 keeps lookups cheap (binary search over a few
// hundred points for any realistic fleet) while holding the split
// within a few percent of even.
const vnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned
// by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members (fleet workers).
// Lookups walk clockwise from the key's hash, so adding or removing
// one member only moves the keys that hashed into its arcs — bounded
// key movement is the property that keeps the response cache and any
// worker-local warmth useful across fleet membership changes. Ring is
// not safe for concurrent use; the router guards it with its own lock.
type Ring struct {
	points  []ringPoint
	members map[string]bool
}

// NewRing returns an empty ring.
func NewRing() *Ring {
	return &Ring{members: make(map[string]bool)}
}

// hash64 positions a string on the ring circle: FNV-1a (dependency-free
// and stable across processes — the ring must agree with itself only,
// but stability keeps tests deterministic) pushed through a
// splitmix64-style finalizer. Raw FNV clumps badly on the short,
// sequential vnode names ("w2#17"), skewing member arcs several-fold;
// the mixer restores avalanche so the load split stays near even.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   hash64(fmt.Sprintf("%s#%d", member, v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes. Removing an absent member
// is a no-op.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the number of distinct members on the ring.
func (r *Ring) Members() int { return len(r.members) }

// Ordered returns up to n distinct members in ring order starting at
// key's position — the per-key preference list. The first entry is the
// key's primary owner; subsequent entries are the natural hedge and
// failover targets, and they too are stable under unrelated membership
// changes. Returns nil for an empty ring.
func (r *Ring) Ordered(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for walked := 0; walked < len(r.points) && len(out) < n; walked++ {
		p := r.points[(i+walked)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns key's primary member, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Ordered(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
