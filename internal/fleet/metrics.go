package fleet

import "github.com/appmult/retrain/internal/obs"

// Fleet-tier telemetry (see DESIGN.md "Observability"). The serving
// tier's headline claims — zero lost requests across a worker kill,
// hedging that trims the tail, a cache that actually hits — are only
// auditable if every routing decision is counted: per-outcome request
// totals, hedge launches and wins, failover re-dispatches, cache
// traffic, and worker churn.
var (
	workersLive = obs.Default().Gauge("fleet_workers_live",
		"Workers currently registered with the router.")
	workersJoined = obs.Default().Counter("fleet_workers_joined_total",
		"Workers admitted by the router (reconnects count again).")
	workersLost = obs.Default().Counter("fleet_workers_lost_total",
		"Workers declared dead (heartbeat expiry, read/write error, or kill).")
	heartbeatTimeouts = obs.Default().Counter("fleet_heartbeat_timeouts_total",
		"Workers declared dead specifically by heartbeat expiry.")

	hedges = obs.Default().Counter("fleet_hedges_total",
		"Hedge dispatches: a second worker was engaged after the hedge deadline.")
	hedgeWins = obs.Default().Counter("fleet_hedge_wins_total",
		"Hedged requests answered first by the hedge replica.")
	failovers = obs.Default().Counter("fleet_failover_total",
		"In-flight requests re-dispatched to a surviving replica after their worker died.")
	duplicateResults = obs.Default().Counter("fleet_duplicate_results_total",
		"Late results discarded because another attempt already answered the request.")

	cacheHits = obs.Default().Counter("fleet_cache_hits_total",
		"Predictions answered from the response cache.")
	cacheMisses = obs.Default().Counter("fleet_cache_misses_total",
		"Predictions that had to be computed by a worker.")
	cacheEvictions = obs.Default().Counter("fleet_cache_evictions_total",
		"Response-cache entries evicted to hold the byte budget.")
	cacheBytes = obs.Default().Gauge("fleet_cache_bytes",
		"Accounted size of the response cache contents.")
	cacheEntries = obs.Default().Gauge("fleet_cache_entries",
		"Entries currently in the response cache.")
	cacheCapacityBytes = obs.Default().Gauge("fleet_cache_capacity_bytes",
		"Response-cache byte budget.")

	routerLatencyMs = obs.Default().Histogram("fleet_request_latency_ms",
		"Router-side end-to-end latency of completed predictions (cache hits included).",
		obs.LatencyBucketsMs)
	routerInflight = obs.Default().Gauge("fleet_inflight",
		"Predictions currently admitted and awaiting a worker answer.")

	framesSent = obs.Default().Counter("fleet_frames_sent_total",
		"Protocol frames written by this process.")
	framesRecv = obs.Default().Counter("fleet_frames_recv_total",
		"Protocol frames received and validated by this process.")
	frameBytesSent = obs.Default().Counter("fleet_frame_bytes_sent_total",
		"Bytes of protocol frames written by this process.")
	frameBytesRecv = obs.Default().Counter("fleet_frame_bytes_recv_total",
		"Bytes of protocol frames received by this process.")

	workerDialRetries = obs.Default().Counter("fleet_worker_dial_retries_total",
		"Worker dial attempts that failed and were retried with backoff.")
	workerReconnects = obs.Default().Counter("fleet_worker_reconnects_total",
		"Worker sessions that ended in an error and re-entered the dial loop.")
	workerPredicts = obs.Default().Counter("fleet_worker_predicts_total",
		"Predict frames served by this worker process.")
)

// requests counts routed predictions by final outcome; each outcome is
// a distinct labeled series registered on first use.
func requests(outcome string) *obs.Counter {
	return obs.Default().Counter("fleet_requests_total",
		"Routed predictions by final outcome (completed, cached, rejected, expired, failed, no_worker).",
		"outcome", outcome)
}

// frameErrors counts framing violations by reason.
func frameErrors(reason string) *obs.Counter {
	return obs.Default().Counter("fleet_frame_errors_total",
		"Frames rejected by protocol validation, by reason (magic, seq, crc, length, io).",
		"reason", reason)
}

// autoscaleEvents counts worker-local replica scaling decisions by
// model and direction.
func autoscaleEvents(model, dir string) *obs.Counter {
	return obs.Default().Counter("fleet_autoscale_total",
		"Worker-local replica scaling events, by model and direction (up, down).",
		"model", model, "dir", dir)
}
