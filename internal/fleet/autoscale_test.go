package fleet

import "testing"

func TestScaleDecision(t *testing.T) {
	cfg := AutoscaleConfig{MinReplicas: 1, MaxReplicas: 4, UpQueueFrac: 0.5, DownIdleTicks: 8}
	cases := []struct {
		name                              string
		depth, capacity, live, idle, tick int
		want                              int
	}{
		{"idle but not long enough", 0, 32, 2, 2, 3, 0},
		{"idle long enough", 0, 32, 2, 2, 8, -1},
		{"idle at floor", 0, 32, 1, 1, 50, 0},
		{"queue below threshold", 10, 32, 2, 0, 0, 0},
		{"queue at threshold", 16, 32, 2, 0, 0, 1},
		{"queue above threshold", 30, 32, 2, 0, 0, 1},
		{"pressure but at cap", 30, 32, 4, 0, 0, 0},
		{"empty queue, replica busy", 0, 32, 2, 1, 20, 0},
		{"no capacity gauge yet", 5, 0, 1, 0, 0, 0},
	}
	for _, tc := range cases {
		if got := scaleDecision(cfg, tc.depth, tc.capacity, tc.live, tc.idle, tc.tick); got != tc.want {
			t.Errorf("%s: scaleDecision(depth=%d cap=%d live=%d idle=%d ticks=%d) = %+d, want %+d",
				tc.name, tc.depth, tc.capacity, tc.live, tc.idle, tc.tick, got, tc.want)
		}
	}
}

func TestScaleDecisionUncappedDefaults(t *testing.T) {
	cfg := AutoscaleConfig{}.withDefaults()
	if cfg.MaxReplicas != 0 {
		t.Fatalf("defaults invented a MaxReplicas cap: %d", cfg.MaxReplicas)
	}
	// With no cap the batcher pool bound is the backstop: decision says up.
	if got := scaleDecision(cfg, 100, 32, 50, 0, 0); got != 1 {
		t.Fatalf("uncapped pressure decision = %+d, want +1", got)
	}
}
