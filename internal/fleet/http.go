package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/appmult/retrain/internal/obs"
)

// PredictRequest is the router's /v1/predict request body — the same
// shape internal/serve speaks, so clients and loadgen work unchanged
// against either tier.
type PredictRequest struct {
	// Model selects the routed model; optional when exactly one model is
	// registered fleet-wide.
	Model string `json:"model"`
	// Image is the flattened (3, HW, HW) input, values roughly [-1, 1].
	Image []float32 `json:"image"`
	// TimeoutMS, when positive, bounds the routed request end to end.
	TimeoutMS int `json:"timeout_ms"`
}

// PredictResponse is the router's /v1/predict success body: the serve
// response shape plus routing metadata.
type PredictResponse struct {
	// Model is the routed model name.
	Model string `json:"model"`
	// Label is the argmax class.
	Label int `json:"label"`
	// Scores are the classifier logits.
	Scores []float32 `json:"scores"`
	// BatchSize is the worker-side micro-batch (0 on a cache hit).
	BatchSize int `json:"batch_size"`
	// TotalMS is the router-side latency.
	TotalMS float64 `json:"total_ms"`
	// Cached is true when the response came from the response cache.
	Cached bool `json:"cached"`
	// Hedged is true when a hedge attempt was dispatched.
	Hedged bool `json:"hedged,omitempty"`
	// Attempts is the number of worker dispatches.
	Attempts int `json:"attempts"`
	// Worker identifies the answering worker (0 on a cache hit).
	Worker int `json:"worker,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the router's HTTP API:
//
//	POST /v1/predict  route one prediction through the fleet
//	GET  /v1/models   fleet-wide model catalog with live host counts
//	GET  /healthz     "ok" once at least one worker is registered
//	GET  /fleetz      router state: workers, cache occupancy, uptime
//	GET  /metrics     process-wide obs registry in Prometheus text format
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", r.handlePredict)
	mux.HandleFunc("/v1/models", r.handleModels)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/fleetz", r.handleFleetz)
	mux.Handle("/metrics", obs.Handler(obs.Default()))
	return mux
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	var body PredictRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	name := body.Model
	if name == "" {
		if ms := r.Models(); len(ms) == 1 {
			name = ms[0].Name
		}
	}
	start := time.Now()
	scores, meta, err := r.Predict(req.Context(), name, body.Image,
		time.Duration(body.TimeoutMS)*time.Millisecond)
	if err != nil {
		writeJSON(w, httpStatusFor(err), errorResponse{err.Error()})
		return
	}
	label := 0
	for i, v := range scores {
		if v > scores[label] {
			label = i
		}
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:     name,
		Label:     label,
		Scores:    scores,
		BatchSize: meta.BatchSize,
		TotalMS:   float64(time.Since(start)) / float64(time.Millisecond),
		Cached:    meta.Cached,
		Hedged:    meta.Hedged,
		Attempts:  meta.Attempts,
		Worker:    meta.WorkerID,
	})
}

// httpStatusFor maps router outcomes onto HTTP status codes, matching
// internal/serve's conventions.
func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, ErrNoWorker):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		if err != nil && strings.Contains(err.Error(), "image has") {
			return http.StatusBadRequest
		}
		return http.StatusInternalServerError
	}
}

func (r *Router) handleModels(w http.ResponseWriter, req *http.Request) {
	out := struct {
		Models []ModelInfo `json:"models"`
	}{Models: r.Models()}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.Workers() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no workers")
		return
	}
	fmt.Fprintln(w, "ok")
}

// fleetzWorker is one worker row in the /fleetz report.
type fleetzWorker struct {
	ID         int      `json:"id"`
	Models     []string `json:"models"`
	LastPongMS float64  `json:"last_pong_ms"`
}

func (r *Router) handleFleetz(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	workers := make([]fleetzWorker, 0, len(r.workers))
	for _, fw := range r.workers {
		workers = append(workers, fleetzWorker{
			ID:         fw.id,
			Models:     modelNames(fw.models),
			LastPongMS: float64(time.Since(time.Unix(0, fw.lastPong.Load()))) / float64(time.Millisecond),
		})
	}
	r.mu.Unlock()
	entries, bytes := r.CacheStats()
	out := struct {
		UptimeS      float64        `json:"uptime_s"`
		Workers      []fleetzWorker `json:"workers"`
		Models       []ModelInfo    `json:"models"`
		CacheEntries int            `json:"cache_entries"`
		CacheBytes   int            `json:"cache_bytes"`
	}{
		UptimeS:      time.Since(r.start).Seconds(),
		Workers:      workers,
		Models:       r.Models(),
		CacheEntries: entries,
		CacheBytes:   bytes,
	}
	writeJSON(w, http.StatusOK, out)
}
