package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

func TestRingJoinMovesOnlyNewOwnersKeys(t *testing.T) {
	r := NewRing()
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	r.Add("w4")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if now != before[k] {
			if now != "w4" {
				t.Fatalf("key %s moved %s -> %s on an unrelated join", k, before[k], now)
			}
			moved++
		}
	}
	// Ideal movement is 1/5 of keys; vnodes keep it near that. Far more
	// means the hash is clumping, none at all means the join is inert.
	if moved == 0 || moved > len(keys)*2/5 {
		t.Errorf("join moved %d/%d keys, want roughly %d", moved, len(keys), len(keys)/5)
	}
}

func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing()
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	owned := 0
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == "w2" {
			owned++
		}
	}

	r.Remove("w2")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if now == "w2" {
			t.Fatalf("key %s still owned by removed member", k)
		}
		if now != before[k] {
			if before[k] != "w2" {
				t.Fatalf("key %s moved %s -> %s though its owner stayed", k, before[k], now)
			}
			moved++
		}
	}
	if moved != owned {
		t.Errorf("leave moved %d keys, want exactly the %d the departed member owned", moved, owned)
	}
}

func TestRingOrderedDistinctAndStable(t *testing.T) {
	r := NewRing()
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	for _, k := range ringKeys(100) {
		set := r.Ordered(k, 3)
		if len(set) != 3 {
			t.Fatalf("Ordered(%q, 3) = %v", k, set)
		}
		seen := map[string]bool{}
		for _, m := range set {
			if seen[m] {
				t.Fatalf("Ordered(%q) repeats member %s: %v", k, m, set)
			}
			seen[m] = true
		}
		if again := r.Ordered(k, 3); fmt.Sprint(again) != fmt.Sprint(set) {
			t.Fatalf("Ordered(%q) unstable: %v then %v", k, set, again)
		}
		if r.Owner(k) != set[0] {
			t.Fatalf("Owner(%q) = %s, Ordered head %s", k, r.Owner(k), set[0])
		}
	}
	// Asking for more members than exist returns them all.
	if set := r.Ordered("x", 10); len(set) != 4 {
		t.Fatalf("Ordered(x, 10) = %v, want all 4 members", set)
	}
}

func TestRingEmptyAndSpread(t *testing.T) {
	r := NewRing()
	if r.Owner("k") != "" || r.Ordered("k", 2) != nil {
		t.Fatal("empty ring must return no owners")
	}
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys; split too uneven: %v", m, 100*frac, counts)
		}
	}
}
