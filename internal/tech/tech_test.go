package tech

import (
	"math"
	"strings"
	"testing"
)

func TestCellKindString(t *testing.T) {
	if CellAnd2.String() != "AND2x2" {
		t.Errorf("AND2 name = %q", CellAnd2.String())
	}
	if CellMaj3.String() != "MAJ3x1" {
		t.Errorf("MAJ3 name = %q", CellMaj3.String())
	}
	if !strings.Contains(CellKind(99).String(), "99") {
		t.Error("out-of-range kind should render numerically")
	}
}

func TestNumInputs(t *testing.T) {
	cases := map[CellKind]int{
		CellInput: 0, CellConst: 0,
		CellBuf: 1, CellNot: 1,
		CellAnd2: 2, CellOr2: 2, CellNand2: 2, CellNor2: 2, CellXor2: 2, CellXnor2: 2,
		CellAnd3: 3, CellOr3: 3, CellMaj3: 3,
	}
	for k, want := range cases {
		if got := k.NumInputs(); got != want {
			t.Errorf("%v.NumInputs() = %d, want %d", k, got, want)
		}
	}
}

func TestASAP7Monotonicity(t *testing.T) {
	l := ASAP7()
	if l.Name() == "" {
		t.Error("library has empty name")
	}
	// Free bookkeeping nodes.
	for _, k := range []CellKind{CellInput, CellConst} {
		c := l.Cell(k)
		if c.AreaUM2 != 0 || c.DelayPS != 0 || c.EnergyFJ != 0 {
			t.Errorf("%v should be free, got %+v", k, c)
		}
	}
	// All real cells have positive characteristics.
	real := []CellKind{CellBuf, CellNot, CellAnd2, CellOr2, CellNand2, CellNor2, CellXor2, CellXnor2, CellAnd3, CellOr3, CellMaj3}
	for _, k := range real {
		c := l.Cell(k)
		if c.AreaUM2 <= 0 || c.DelayPS <= 0 || c.EnergyFJ <= 0 {
			t.Errorf("%v has non-positive characteristics: %+v", k, c)
		}
	}
	// Expected relative ordering for a sane 7nm library.
	if !(l.Cell(CellNot).AreaUM2 < l.Cell(CellNand2).AreaUM2) {
		t.Error("INV should be smaller than NAND2")
	}
	if !(l.Cell(CellNand2).AreaUM2 < l.Cell(CellXor2).AreaUM2) {
		t.Error("NAND2 should be smaller than XOR2")
	}
	if !(l.Cell(CellNand2).DelayPS < l.Cell(CellXor2).DelayPS) {
		t.Error("NAND2 should be faster than XOR2")
	}
	if !(l.Cell(CellXor2).EnergyFJ > l.Cell(CellAnd2).EnergyFJ) {
		t.Error("XOR2 should burn more energy than AND2")
	}
}

func TestCellPanicsOnBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cell(bad) did not panic")
		}
	}()
	ASAP7().Cell(CellKind(-1))
}

func TestPowerUW(t *testing.T) {
	// 1000 fJ/cycle at 1 GHz = 1 uW.
	if got := PowerUW(1000, 1.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("PowerUW(1000,1) = %v, want 1", got)
	}
	// Linear in both arguments.
	if got := PowerUW(500, 2.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("PowerUW(500,2) = %v, want 1", got)
	}
	if PowerUW(0, 5) != 0 {
		t.Error("zero energy should be zero power")
	}
}
