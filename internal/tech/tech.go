// Package tech models a 7 nm-class standard-cell library in the spirit
// of ASAP7 [Clark et al., Microelectronics Journal 2016]. It supplies
// per-cell area, intrinsic delay, and switching energy used by the
// circuit package to estimate the area, critical-path delay, and
// dynamic power of multiplier netlists.
//
// The paper characterizes multipliers with Synopsys Design Compiler on
// the real ASAP7 library; that tool chain is proprietary, so this
// package substitutes a calibrated analytical model (see DESIGN.md).
// The numbers below are chosen so that an accurate 8-bit array
// multiplier lands near the paper's Table I reference point
// (25.6 um^2, 730 ps, 22.9 uW at 1 GHz under uniform random inputs),
// and so that relative costs between cells follow typical 7 nm data.
package tech

import "fmt"

// CellKind enumerates the combinational cells the multiplier netlists
// are built from.
type CellKind int

// Supported cell kinds. CONST and INPUT occupy no silicon; they are
// netlist bookkeeping nodes.
const (
	CellInput CellKind = iota
	CellConst
	CellBuf
	CellNot
	CellAnd2
	CellOr2
	CellNand2
	CellNor2
	CellXor2
	CellXnor2
	CellAnd3
	CellOr3
	CellMaj3 // majority gate: carry of a full adder
	numCellKinds
)

var cellNames = [...]string{
	CellInput: "INPUT",
	CellConst: "CONST",
	CellBuf:   "BUFx2",
	CellNot:   "INVx1",
	CellAnd2:  "AND2x2",
	CellOr2:   "OR2x2",
	CellNand2: "NAND2x1",
	CellNor2:  "NOR2x1",
	CellXor2:  "XOR2x1",
	CellXnor2: "XNOR2x1",
	CellAnd3:  "AND3x1",
	CellOr3:   "OR3x1",
	CellMaj3:  "MAJ3x1",
}

// String returns the library cell name for the kind.
func (k CellKind) String() string {
	if k < 0 || int(k) >= len(cellNames) {
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
	return cellNames[k]
}

// NumInputs returns the fan-in of the cell kind.
func (k CellKind) NumInputs() int {
	switch k {
	case CellInput, CellConst:
		return 0
	case CellBuf, CellNot:
		return 1
	case CellAnd3, CellOr3, CellMaj3:
		return 3
	default:
		return 2
	}
}

// Cell holds the physical characteristics of one library cell.
type Cell struct {
	Kind CellKind
	// AreaUM2 is the placed cell area in square micrometres.
	AreaUM2 float64
	// DelayPS is the intrinsic pin-to-pin delay in picoseconds under a
	// nominal load. The static timing model in package circuit sums
	// these along the longest topological path.
	DelayPS float64
	// EnergyFJ is the average internal + load switching energy per
	// output transition in femtojoules.
	EnergyFJ float64
}

// Library is an immutable table of cells indexed by kind.
type Library struct {
	name  string
	cells [numCellKinds]Cell
}

// Name returns the library's display name.
func (l *Library) Name() string { return l.name }

// Cell returns the characteristics of the given cell kind.
func (l *Library) Cell(k CellKind) Cell {
	if k < 0 || k >= numCellKinds {
		panic(fmt.Sprintf("tech: unknown cell kind %d", int(k)))
	}
	return l.cells[k]
}

// ASAP7 returns the built-in 7 nm-class library used throughout the
// experiments. Values are calibrated as described in the package
// comment; they are deterministic and version-stable so that the
// Table I reproduction is reproducible byte-for-byte.
func ASAP7() *Library {
	l := &Library{name: "asap7-model"}
	set := func(k CellKind, area, delay, energy float64) {
		l.cells[k] = Cell{Kind: k, AreaUM2: area, DelayPS: delay, EnergyFJ: energy}
	}
	// Zero-cost bookkeeping nodes.
	set(CellInput, 0, 0, 0)
	set(CellConst, 0, 0, 0)
	// Combinational cells. Areas follow typical relative sizing for a
	// 7.5-track 7 nm library. Delays and energies are *effective*
	// figures calibrated against the paper's Design Compiler reference
	// point for the accurate 8-bit array multiplier (25.6 um^2,
	// 730 ps, 22.9 uW at 1 GHz): they fold in wire load, fanout
	// derating, and leakage amortization, which is why the energy per
	// transition is far above a bare-gate 7 nm figure.
	set(CellBuf, 0.0935, 15.5, 154)
	set(CellNot, 0.0467, 8.4, 84)
	set(CellNand2, 0.0701, 11.6, 134)
	set(CellNor2, 0.0701, 13.5, 140)
	set(CellAnd2, 0.0935, 17.4, 174)
	set(CellOr2, 0.0935, 18.7, 179)
	set(CellXor2, 0.1402, 25.2, 294)
	set(CellXnor2, 0.1402, 25.2, 294)
	set(CellAnd3, 0.1168, 20.6, 224)
	set(CellOr3, 0.1168, 21.9, 230)
	set(CellMaj3, 0.1635, 27.1, 322)
	return l
}

// PowerUW converts switching energy per cycle (fJ) at the given clock
// frequency (GHz) to average power in microwatts:
//
//	P[uW] = E[fJ/cycle] * f[GHz] * 1e-3.
func PowerUW(energyFJPerCycle, clockGHz float64) float64 {
	return energyFJPerCycle * clockGHz * 1e-3
}
