# Tier-1: the gate every change must pass.
.PHONY: build test tier1 vet race bench benchreport doccheck verify clean

BENCH_BASELINE := BENCH_kernels.json
BENCH_TRAIN := BENCH_train.json

build:
	go build ./...

test:
	go test ./...

tier1: build test

vet:
	go vet ./...

# The concurrency-critical packages get a -race pass: the worker pool
# and the kernels scheduled on it, the guarded train loop, the retrying
# data pipeline, the fault injector, the serving subsystem's
# batcher/replica machinery, and the distributed coordinator/worker.
race:
	go test -race -count=1 ./internal/tensor/ ./internal/nn/ ./internal/train/ ./internal/data/ ./internal/faults/ ./internal/serve/ ./internal/obs/ ./internal/dist/ ./internal/fleet/

# bench re-measures the kernel and training-step baselines, fails
# loudly if anything regressed beyond benchdiff's tolerance, and
# promotes the new numbers.
bench:
	go run ./cmd/benchkernels -out $(BENCH_BASELINE).new
	go run ./scripts/benchdiff $(BENCH_BASELINE) $(BENCH_BASELINE).new
	mv $(BENCH_BASELINE).new $(BENCH_BASELINE)
	go run ./cmd/benchtrain -out $(BENCH_TRAIN).new
	go run ./scripts/benchdiff $(BENCH_TRAIN) $(BENCH_TRAIN).new
	mv $(BENCH_TRAIN).new $(BENCH_TRAIN)

# benchreport is the non-blocking flavor used by verify: quick
# (noisier) measurements, report-only diff. One check IS blocking: the
# benchmark name sets must match the committed baseline (-check-names
# with an unreachable tolerance), so adding or retiring a benchmark in
# cmd/benchkernels without regenerating BENCH_kernels.json fails loudly
# instead of silently losing coverage.
benchreport:
	go run ./cmd/benchkernels -quick -out $(BENCH_BASELINE).quick
	-go run ./scripts/benchdiff -tol 1.5 $(BENCH_BASELINE) $(BENCH_BASELINE).quick
	go run ./scripts/benchdiff -check-names -tol 1e9 $(BENCH_BASELINE) $(BENCH_BASELINE).quick
	-rm -f $(BENCH_BASELINE).quick
	-go run ./cmd/benchtrain -quick -out $(BENCH_TRAIN).quick
	-go run ./scripts/benchdiff -tol 1.5 $(BENCH_TRAIN) $(BENCH_TRAIN).quick
	-rm -f $(BENCH_TRAIN).quick

# doccheck enforces doc comments on every exported identifier in the
# public-facing internal packages (see scripts/doccheck).
doccheck:
	go run ./scripts/doccheck ./internal/serve ./internal/nn ./internal/obs ./internal/dist ./internal/fleet ./internal/gradient ./internal/train ./cmd/traind ./cmd/fleetd

verify: vet tier1 doccheck race benchreport

clean:
	go clean ./...
	rm -f $(BENCH_BASELINE).new $(BENCH_BASELINE).quick $(BENCH_TRAIN).new $(BENCH_TRAIN).quick
