# Tier-1: the gate every change must pass.
.PHONY: build test tier1 vet race verify clean

build:
	go build ./...

test:
	go test ./...

tier1: build test

vet:
	go vet ./...

# The robustness-critical packages get a -race pass: the guarded train
# loop, the retrying data pipeline, and the fault injector.
race:
	go test -race -count=1 ./internal/train/ ./internal/data/ ./internal/faults/

verify: vet tier1 race

clean:
	go clean ./...
