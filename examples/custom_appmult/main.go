// Custom AppMult: design your own approximate multiplier three ways —
// a hand-written partial-product mask, an error-profile fit, and a
// live approximate-logic-synthesis pass on a gate-level netlist — then
// plug one into the retraining framework with a user-defined gradient.
//
// This exercises the extension points the paper's Section IV promises
// ("our framework can also accommodate other user-defined gradients").
//
//	go run ./examples/custom_appmult
package main

import (
	"fmt"
	"log"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/circuit"
	"github.com/appmult/retrain/internal/data"
	"github.com/appmult/retrain/internal/errmetrics"
	"github.com/appmult/retrain/internal/gradient"
	"github.com/appmult/retrain/internal/models"
	"github.com/appmult/retrain/internal/mulsynth"
	"github.com/appmult/retrain/internal/nn"
	"github.com/appmult/retrain/internal/tech"
	"github.com/appmult/retrain/internal/train"
)

func main() {
	log.SetFlags(0)
	lib := tech.ASAP7()

	// --- Way 1: hand-crafted partial-product mask -------------------
	// A 6-bit multiplier dropping the two cheapest columns plus one
	// mid-significance cell, with a small compensation constant.
	mask := mulsynth.TruncMask(6, 2).Delete(2, 1).Delete(1, 2)
	handMade := appmult.NewMasked("mul6u_custom", mask, 3)
	fmt.Printf("hand-made %s: %v\n", handMade.Name(), errmetrics.Exhaustive(6, handMade.Mul))
	rep := handMade.Netlist().Analyze(lib, circuit.PowerOptions{Vectors: 1024, Seed: 1})
	fmt.Printf("  synthesized: %d gates, %.1f um^2, %.1f ps, %.2f uW\n",
		rep.Gates, rep.AreaUM2, rep.DelayPS, rep.PowerUW)

	// --- Way 2: fit a multiplier to an error profile -----------------
	// Ask for a 6-bit multiplier with NMED ~0.2% and MaxED ~40; the
	// fitter searches masks + compensation (this is how the registry's
	// EvoApproxLib stand-ins were generated).
	fitted, res := appmult.Fit("mul6u_fit", 6, appmult.FitTarget{NMEDPercent: 0.2, MaxED: 40})
	fmt.Printf("fitted %s: %v (trunc=%d extras=%d comp=%d)\n",
		fitted.Name(), res.Metrics, res.TruncColumns, len(res.ExtraDeleted), res.Comp)

	// --- Way 3: approximate logic synthesis ---------------------------
	// Run the greedy ALS pass on an exact 5-bit array multiplier under
	// an NMED budget, then lift the synthesized netlist back into a
	// LUT-backed multiplier.
	exact := mulsynth.BuildAccurate("mul5u_acc", 5)
	synth, subs := mulsynth.ApproxSynth(exact, 5, lib, mulsynth.ALSOptions{
		NMEDBudget: 0.5, SampleVectors: 512, Seed: 3, MaxSubs: 10,
	})
	alsMult := appmult.FromNetlist("mul5u_als", 5, synth)
	fmt.Printf("ALS %s: %v after %d substitutions (area %.1f -> %.1f um^2)\n",
		alsMult.Name(), errmetrics.Exhaustive(5, alsMult.Mul), len(subs),
		exact.Area(lib), synth.Area(lib))

	// --- Plug into retraining with a user-defined gradient ----------
	// Blend STE with the difference-based gradient 50/50 — an estimator
	// the paper's framework supports but does not evaluate.
	diff := gradient.Difference(handMade.Name(), 6, 2, handMade.Mul)
	blended := gradient.FromFunc("blend(ste,diff)", 6, func(w, x uint32) (float64, float64) {
		dw, dx := diff.At(w, x)
		return (float64(dw) + float64(x)) / 2, (float64(dx) + float64(w)) / 2
	})
	op := nn.NewOp(handMade, blended)

	trainSet, testSet := data.Synthetic(data.SynthConfig{
		Classes: 4, Train: 120, Test: 60, HW: 8, Seed: 5,
	})
	model := models.LeNet(models.Config{
		Classes: 4, InputHW: 8, Width: 0.15,
		Conv: models.ApproxConv(op), Seed: 5,
	})
	sc := train.Scale{Epochs: 5, BatchSize: 20, LR0: 6e-3}
	out := train.Run(model, trainSet, testSet, train.Config{
		Epochs: sc.Epochs, BatchSize: sc.BatchSize, Schedule: sc.Schedule(), Seed: 5,
	})
	fmt.Printf("\nretrained LeNet with %s: top-1 %.2f%% (loss %.3f)\n",
		op.Label, out.FinalTop1(), out.FinalLoss())
}
