// Power/accuracy exploration: the Fig. 5 workflow as a library user
// would script it — characterize a set of candidate multipliers,
// retrain a model with each, and print the accuracy-versus-power
// frontier to pick an operating point.
//
//	go run ./examples/power_accuracy
package main

import (
	"fmt"
	"log"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/circuit"
	"github.com/appmult/retrain/internal/report"
	"github.com/appmult/retrain/internal/tech"
	"github.com/appmult/retrain/internal/train"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("power_accuracy: ")

	// Candidates: the 6-bit truncated multiplier plus two 7-bit points
	// with different error/power trade-offs (a subset keeps this
	// example fast; cmd/tradeoff sweeps the full panels).
	candidates := []string{"mul6u_rm4", "mul7u_06Q", "mul7u_rm6"}

	lib := tech.ASAP7()
	popt := circuit.PowerOptions{Vectors: 2048, Seed: 1}
	acc8, _ := appmult.Lookup("mul8u_acc")
	norm := acc8.Hardware(lib, popt).PowerUW

	sc := train.Scale{HW: 10, Width: 0.2, Train: 400, Test: 100, Epochs: 7, BatchSize: 20, LR0: 6e-3}
	t := report.NewTable("accuracy vs normalized power (LeNet, synthetic CIFAR-10 stand-in)",
		"multiplier", "norm.power", "ref acc/%", "retrained acc/%", "acc drop")
	for _, name := range candidates {
		e, ok := appmult.Lookup(name)
		if !ok {
			log.Fatalf("unknown multiplier %q", name)
		}
		log.Printf("retraining with %s ...", name)
		r := train.CompareGradients(name, "lenet", 10, sc, 13, nil)
		hw := e.Hardware(lib, popt)
		t.AddRow(name,
			fmt.Sprintf("%.2f", hw.PowerUW/norm),
			fmt.Sprintf("%.1f", r.RefTop1),
			fmt.Sprintf("%.1f", r.Ours.FinalTop1()),
			fmt.Sprintf("%+.1f", r.Ours.FinalTop1()-r.RefTop1))
	}
	t.WriteText(os.Stdout)
	fmt.Println("\npick the lowest-power row whose accuracy delta is acceptable;")
	fmt.Println("the paper's Fig. 5 plots exactly this frontier for ResNet18.")
	fmt.Println("(at this demo scale the QAT reference is as undertrained as the")
	fmt.Println("retrained models, so retraining often lands ABOVE it; at paper")
	fmt.Println("scale the reference saturates and the deltas turn negative.)")
}
