// Quickstart: characterize an approximate multiplier, build its
// difference-based gradient tables, and retrain a small CNN with it —
// the library's whole pipeline in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/circuit"
	"github.com/appmult/retrain/internal/data"
	"github.com/appmult/retrain/internal/errmetrics"
	"github.com/appmult/retrain/internal/models"
	"github.com/appmult/retrain/internal/nn"
	"github.com/appmult/retrain/internal/tech"
	"github.com/appmult/retrain/internal/train"
)

func main() {
	log.SetFlags(0)

	// 1. Pick an approximate multiplier from the Table I registry.
	entry, ok := appmult.Lookup("mul7u_rm6")
	if !ok {
		log.Fatal("registry missing mul7u_rm6")
	}
	m := entry.Mult
	fmt.Printf("multiplier: %s (%d-bit)\n", m.Name(), m.Bits())
	fmt.Printf("  example: 10 x 100 = %d (accurate: %d)\n", m.Mul(10, 100), 10*100)

	// 2. Measure its error metrics exhaustively (Eq. 2) and its
	// hardware cost on the built-in ASAP7-class library.
	em := errmetrics.Exhaustive(m.Bits(), m.Mul)
	fmt.Printf("  errors:  %v\n", em)
	hw := entry.Hardware(tech.ASAP7(), circuit.PowerOptions{Vectors: 2048, Seed: 1})
	fmt.Printf("  cost:    %.1f um^2, %.1f ps, %.2f uW (%s)\n", hw.AreaUM2, hw.DelayPS, hw.PowerUW, hw.Source)

	// 3. Build the two gradient estimators: the STE baseline and the
	// paper's difference-based tables at the selected half window size.
	steOp := nn.STEOp(m)
	diffOp := nn.DifferenceOp(m, entry.HWS)
	fmt.Printf("  gradient tables: %s | %s\n\n", steOp.Label, diffOp.Label)

	// 4. Retrain a LeNet on a small synthetic dataset with each
	// estimator and compare.
	trainSet, testSet := data.Synthetic(data.SynthConfig{
		Classes: 10, Train: 240, Test: 120, HW: 12, Seed: 7,
	})
	sc := train.Scale{HW: 12, Width: 0.2, Epochs: 6, BatchSize: 24, LR0: 5e-3}
	for _, op := range []*nn.Op{steOp, diffOp} {
		model := models.LeNet(models.Config{
			Classes: 10, InputHW: 12, Width: sc.Width,
			Conv: models.ApproxConv(op), Seed: 7,
		})
		res := train.Run(model, trainSet, testSet, train.Config{
			Epochs: sc.Epochs, BatchSize: sc.BatchSize, Schedule: sc.Schedule(), Seed: 7,
		})
		fmt.Printf("%-40s final top-1 %.2f%%\n", op.Label, res.FinalTop1())
	}
}
