// Hardware flow: the EDA-facing half of the library in one script —
// synthesize a multiplier netlist, rank its gates by stuck-at fault
// criticality, approximate it, export structural Verilog for a real
// tool chain, and check the signed-arithmetic extension.
//
//	go run ./examples/hardware_flow
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/circuit"
	"github.com/appmult/retrain/internal/errmetrics"
	"github.com/appmult/retrain/internal/mulsynth"
	"github.com/appmult/retrain/internal/tech"
)

func main() {
	log.SetFlags(0)
	lib := tech.ASAP7()
	bits := 5

	// Synthesize the exact multiplier and characterize it.
	exact := mulsynth.BuildAccurate("mul5u", bits)
	rep := exact.Analyze(lib, circuit.PowerOptions{Vectors: 2048, Seed: 1})
	fmt.Printf("exact %d-bit multiplier: %d gates, %.1f um^2, %.0f ps, %.2f uW\n",
		bits, rep.Gates, rep.AreaUM2, rep.DelayPS, rep.PowerUW)

	// Rank gates by the damage a stuck-at fault would do: the cheap end
	// of this ranking is what approximate synthesis removes first.
	impacts := mulsynth.FaultSensitivity(exact, bits, 1024, 1)
	sort.Slice(impacts, func(i, j int) bool { return impacts[i].NMEDPercent < impacts[j].NMEDPercent })
	fmt.Println("\nstuck-at criticality (cheapest and costliest three gates):")
	for _, fi := range impacts[:3] {
		fmt.Printf("  gate %3d stuck-at-%d -> NMED %.3f%%\n", fi.Gate, fi.StuckAt, fi.NMEDPercent)
	}
	for _, fi := range impacts[len(impacts)-3:] {
		fmt.Printf("  gate %3d stuck-at-%d -> NMED %.3f%%\n", fi.Gate, fi.StuckAt, fi.NMEDPercent)
	}

	// Approximate under a budget and re-characterize.
	synth, subs := mulsynth.ApproxSynth(exact, bits, lib, mulsynth.ALSOptions{
		NMEDBudget: 0.4, SampleVectors: 512, Seed: 2, MaxSubs: 10,
	})
	srep := synth.Analyze(lib, circuit.PowerOptions{Vectors: 2048, Seed: 1})
	m := appmult.FromNetlist("mul5u_als", bits, synth)
	fmt.Printf("\nafter ALS (%d substitutions): %d gates, %.1f um^2, %.2f uW, %v\n",
		len(subs), srep.Gates, srep.AreaUM2, srep.PowerUW,
		errmetrics.Exhaustive(bits, m.Mul))

	// Export the approximate netlist as structural Verilog.
	path := "mul5u_als.v"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := synth.WriteVerilog(f, "mul5u_als"); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructural Verilog written to %s\n", path)

	// Signed arithmetic via the sign-magnitude wrapper.
	s := appmult.NewSigned(m)
	fmt.Printf("\nsigned extension %s:\n", s.Name())
	for _, pair := range [][2]int32{{-9, 13}, {9, -13}, {-9, -13}, {9, 13}} {
		fmt.Printf("  %3d * %3d = %4d (exact %4d)\n",
			pair[0], pair[1], s.MulSigned(pair[0], pair[1]), int64(pair[0])*int64(pair[1]))
	}
}
