// HWS selection: reproduce the paper's Section V-A protocol for
// choosing the half window size of the difference-based gradient — try
// each candidate, train a small LeNet for a few epochs, keep the HWS
// with the lowest final training loss — and visualize why the choice
// matters by printing a gradient row at two different window sizes.
//
//	go run ./examples/hws_selection
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/gradient"
	"github.com/appmult/retrain/internal/train"
)

func main() {
	log.SetFlags(0)
	entry, ok := appmult.Lookup("mul6u_rm4")
	if !ok {
		log.Fatal("registry missing mul6u_rm4")
	}
	m := entry.Mult

	// Why HWS matters: compare the gradient row at Wf=5 under a narrow
	// and a wide window. Narrow windows keep stair artifacts; wide
	// windows oversmooth toward the STE constant.
	row := make([]uint32, 64)
	for x := range row {
		row[x] = m.Mul(5, uint32(x))
	}
	narrow := gradient.DifferenceRow(row, 1)
	wide := gradient.DifferenceRow(row, 16)
	fmt.Println("gradient of AM(5, X) for X = 16..24 (STE would be constant 5):")
	fmt.Printf("  %-8s %-10s %-10s\n", "X", "HWS=1", "HWS=16")
	for x := 16; x <= 24; x++ {
		fmt.Printf("  %-8d %-10.3f %-10.3f\n", x, narrow[x], wide[x])
	}

	// The selection protocol: 5 epochs of LeNet per candidate, pick the
	// minimum training loss.
	sc := train.Scale{HW: 8, Width: 0.15, Train: 160, Test: 80, Epochs: 5, BatchSize: 20, LR0: 6e-3}
	best, losses := train.SelectHWS(m, []int{1, 2, 4, 8, 16}, 10, sc, 11, nil)

	fmt.Printf("\nHWS selection for %s (LeNet, %d epochs per candidate):\n", m.Name(), sc.Epochs)
	keys := make([]int, 0, len(losses))
	for k := range losses {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		marker := ""
		if k == best {
			marker = "  <== selected"
		}
		fmt.Printf("  HWS %2d: final loss %.4f%s\n", k, losses[k], marker)
	}
	fmt.Printf("\nselected HWS = %d; the paper's Table I selects %d for this multiplier.\n", best, entry.HWS)
}
