// Package retrain_test is the benchmark harness: one benchmark per
// table and figure of the paper, plus the ablations DESIGN.md calls
// out and microbenchmarks of the hot kernels.
//
// Table/figure benches run the corresponding experiment end-to-end at
// test scale; the cmd tools run the same code at larger scales (see
// EXPERIMENTS.md for recorded results and paper-vs-measured deltas):
//
//	BenchmarkTableI_*   <-> cmd/amchar
//	BenchmarkTableII_*  <-> cmd/retrain
//	BenchmarkFig3_*     <-> cmd/gradviz
//	BenchmarkFig5_*     <-> cmd/tradeoff
//	BenchmarkFig6_*     <-> cmd/curves
//	BenchmarkHWS_*      <-> cmd/sweephws
//	BenchmarkAblation_* <-> cmd/ablate
package retrain_test

import (
	"math/rand"
	"testing"

	"github.com/appmult/retrain/internal/appmult"
	"github.com/appmult/retrain/internal/circuit"
	"github.com/appmult/retrain/internal/data"
	"github.com/appmult/retrain/internal/errmetrics"
	"github.com/appmult/retrain/internal/gradient"
	"github.com/appmult/retrain/internal/models"
	"github.com/appmult/retrain/internal/mulsynth"
	"github.com/appmult/retrain/internal/nn"
	"github.com/appmult/retrain/internal/tech"
	"github.com/appmult/retrain/internal/tensor"
	"github.com/appmult/retrain/internal/train"
)

// ---- Table I: multiplier characterization ---------------------------

// BenchmarkTableI_ErrorMetrics measures the exhaustive ER/NMED/MaxED
// enumeration over the whole registry (the right half of Table I).
func BenchmarkTableI_ErrorMetrics(b *testing.B) {
	reg := appmult.Registry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range reg {
			_ = errmetrics.Exhaustive(e.Mult.Bits(), e.Mult.Mul)
		}
	}
}

// BenchmarkTableI_Hardware measures netlist synthesis + area/delay/
// power analysis over the registry (the left half of Table I).
func BenchmarkTableI_Hardware(b *testing.B) {
	lib := tech.ASAP7()
	opt := circuit.PowerOptions{Vectors: 256, Seed: 1}
	reg := appmult.Registry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range reg {
			_ = e.Hardware(lib, opt)
		}
	}
}

// ---- Table II: retraining comparison --------------------------------

func benchTableIIRow(b *testing.B, mult, model string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := train.CompareGradients(mult, model, 4, train.TinyScale, 1, nil)
		if r.STE.FinalTop1() == 0 && r.Ours.FinalTop1() == 0 {
			b.Fatal("degenerate retraining result")
		}
	}
}

// BenchmarkTableII_VGG19 runs one Table II VGG19 row (QAT reference +
// STE retraining + difference retraining) at test scale.
func BenchmarkTableII_VGG19(b *testing.B) { benchTableIIRow(b, "mul7u_rm6", "vgg19") }

// BenchmarkTableII_ResNet18 runs one Table II ResNet18 row at test
// scale.
func BenchmarkTableII_ResNet18(b *testing.B) { benchTableIIRow(b, "mul8u_rm8", "resnet18") }

// ---- Fig. 3: gradient construction ----------------------------------

// BenchmarkFig3_DifferenceTables measures building the full
// difference-based gradient LUT pair for the Fig. 3 multiplier.
func BenchmarkFig3_DifferenceTables(b *testing.B) {
	e, _ := appmult.Lookup("mul7u_rm6")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gradient.Difference(e.Mult.Name(), e.Mult.Bits(), 4, e.Mult.Mul)
	}
}

// BenchmarkFig3_SmoothRow measures the Eq. (4) sliding-window smoothing
// of a single multiplier row.
func BenchmarkFig3_SmoothRow(b *testing.B) {
	e, _ := appmult.Lookup("mul7u_rm6")
	row := make([]uint32, 128)
	for x := range row {
		row[x] = e.Mult.Mul(10, uint32(x))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = gradient.SmoothRow(row, 4)
	}
}

// ---- Fig. 5: accuracy/power frontier ---------------------------------

// BenchmarkFig5_Frontier computes the normalized-power axis for both
// panels (all 7- and 8-bit registry multipliers) plus one retrained
// accuracy point at test scale.
func BenchmarkFig5_Frontier(b *testing.B) {
	lib := tech.ASAP7()
	opt := circuit.PowerOptions{Vectors: 256, Seed: 1}
	for i := 0; i < b.N; i++ {
		acc8, _ := appmult.Lookup("mul8u_acc")
		norm := acc8.Hardware(lib, opt).PowerUW
		for _, e := range appmult.Registry() {
			if e.Mult.Bits() == 6 {
				continue
			}
			if p := e.Hardware(lib, opt).PowerUW / norm; p <= 0 {
				b.Fatal("non-positive normalized power")
			}
		}
		r := train.CompareGradients("mul7u_rm6", "resnet18", 4, train.TinyScale, 1, nil)
		if r.Ours.FinalTop1() < 0 {
			b.Fatal("bad accuracy")
		}
	}
}

// ---- Fig. 6: top-5 curves on the CIFAR-100 stand-in ------------------

// BenchmarkFig6_ResNet34Top5 runs the Fig. 6 experiment (mul6u_rm4,
// 100 classes, top-5 tracking) on ResNet34 at test scale.
func BenchmarkFig6_ResNet34Top5(b *testing.B) {
	sc := train.TinyScale
	sc.Train, sc.Test = 200, 100 // 100 classes need a few samples each
	for i := 0; i < b.N; i++ {
		r := train.CompareGradients("mul6u_rm4", "resnet34", 100, sc, 1, nil)
		if len(r.Ours.TestTop5) != sc.Epochs {
			b.Fatal("missing top-5 trajectory")
		}
	}
}

// ---- HWS selection ----------------------------------------------------

// BenchmarkHWS_Selection runs the Section V-A HWS sweep (three
// candidates, LeNet) at test scale.
func BenchmarkHWS_Selection(b *testing.B) {
	e, _ := appmult.Lookup("mul6u_rm4")
	sc := train.Scale{HW: 8, Width: 0.08, Train: 60, Test: 30, Epochs: 2, BatchSize: 10, LR0: 6e-3}
	for i := 0; i < b.N; i++ {
		best, _ := train.SelectHWS(e.Mult, []int{1, 2, 4}, 4, sc, 1, nil)
		if best == 0 {
			b.Fatal("no HWS selected")
		}
	}
}

// ---- Ablations --------------------------------------------------------

// BenchmarkAblation_SmoothingOff compares table construction with and
// without smoothing (the RawDifference ablation) — the cost side of the
// Section III-A design choice.
func BenchmarkAblation_SmoothingOff(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_rm8")
	b.Run("difference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = gradient.Difference(e.Mult.Name(), 8, 16, e.Mult.Mul)
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = gradient.RawDifference(e.Mult.Name(), 8, e.Mult.Mul)
		}
	})
}

// BenchmarkAblation_LUTvsOnTheFly quantifies why the backward pass uses
// precomputed gradient LUTs: one LUT gather versus recomputing the
// smoothed difference for a single operand pair on demand.
func BenchmarkAblation_LUTvsOnTheFly(b *testing.B) {
	e, _ := appmult.Lookup("mul7u_rm6")
	tbl := gradient.Difference(e.Mult.Name(), 7, 4, e.Mult.Mul)
	b.Run("lut", func(b *testing.B) {
		var acc float32
		for i := 0; i < b.N; i++ {
			dw, dx := tbl.At(uint32(i)&127, uint32(i>>7)&127)
			acc += dw + dx
		}
		_ = acc
	})
	b.Run("onthefly", func(b *testing.B) {
		row := make([]uint32, 128)
		var acc float64
		for i := 0; i < b.N; i++ {
			w := uint32(i) & 127
			for x := range row {
				row[x] = e.Mult.Mul(w, uint32(x))
			}
			g := gradient.DifferenceRow(row, 4)
			acc += g[int(uint32(i>>7)&127)]
		}
		_ = acc
	})
}

// BenchmarkAblation_HWSSweep builds difference tables across the
// candidate HWS values (the construction-cost side of Table I's last
// column).
func BenchmarkAblation_HWSSweep(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_2NDH")
	for i := 0; i < b.N; i++ {
		for _, hws := range gradient.DefaultHWSCandidates {
			if hws > gradient.MaxHWS(8) {
				continue
			}
			_ = gradient.Difference(e.Mult.Name(), 8, hws, e.Mult.Mul)
		}
	}
}

// ---- Microbenchmarks of the hot kernels -------------------------------

// BenchmarkKernel_ApproxConvForward measures the LUT-based approximate
// convolution forward pass on a realistic layer shape.
func BenchmarkKernel_ApproxConvForward(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_rm8")
	op := nn.STEOp(e.Mult)
	layer := nn.NewApproxConv2D("c", 16, 32, 3, 1, 1, op, newRng(1))
	x := tensor.New(4, 16, 16, 16)
	fill(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = layer.Forward(x, true)
	}
}

// BenchmarkKernel_ApproxConvBackward measures the LUT-gradient backward
// pass (Eq. 9) on the same shape.
func BenchmarkKernel_ApproxConvBackward(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_rm8")
	op := nn.DifferenceOp(e.Mult, 16)
	layer := nn.NewApproxConv2D("c", 16, 32, 3, 1, 1, op, newRng(1))
	x := tensor.New(4, 16, 16, 16)
	fill(x)
	y := layer.Forward(x, true)
	dy := tensor.New(y.Shape...)
	fill(dy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(layer)
		_ = layer.Backward(dy)
	}
}

// BenchmarkKernel_FloatConvForward is the float conv baseline for the
// approximate kernel above.
func BenchmarkKernel_FloatConvForward(b *testing.B) {
	layer := nn.NewConv2D("c", 16, 32, 3, 1, 1, newRng(1))
	x := tensor.New(4, 16, 16, 16)
	fill(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = layer.Forward(x, true)
	}
}

// BenchmarkKernel_ProductLUTBuild measures building an 8-bit product
// LUT (64k entries), the per-multiplier setup cost of the framework.
func BenchmarkKernel_ProductLUTBuild(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_2NDH")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = appmult.BuildLUT(e.Mult)
	}
}

// BenchmarkKernel_NetlistPower measures Monte-Carlo power estimation of
// the accurate 8-bit multiplier netlist.
func BenchmarkKernel_NetlistPower(b *testing.B) {
	n := mulsynth.BuildAccurate("acc8", 8)
	lib := tech.ASAP7()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = n.EstimatePower(lib, circuit.PowerOptions{Vectors: 64, Seed: 1})
	}
}

// BenchmarkKernel_SyntheticData measures synthetic dataset generation.
func BenchmarkKernel_SyntheticData(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = data.Synthetic(data.SynthConfig{Classes: 10, Train: 64, Test: 16, HW: 16, Seed: 1})
	}
}

// BenchmarkKernel_LeNetTrainStep measures one full optimizer step
// (forward + loss + backward + Adam) of an approximate LeNet.
func BenchmarkKernel_LeNetTrainStep(b *testing.B) {
	e, _ := appmult.Lookup("mul6u_rm4")
	op := nn.DifferenceOp(e.Mult, 2)
	model := models.LeNet(models.Config{
		Classes: 10, InputHW: 16, Width: 0.25,
		Conv: models.ApproxConv(op), Seed: 1,
	})
	trainSet, _ := data.Synthetic(data.SynthConfig{Classes: 10, Train: 32, Test: 10, HW: 16, Seed: 1})
	batch := trainSet.Batches(32, 0)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(model)
		out := model.Forward(batch.X, true)
		_, grad := nn.SoftmaxCrossEntropy(out, batch.Y)
		model.Backward(grad)
	}
}

// ---- helpers -----------------------------------------------------------

func fill(t *tensor.Tensor) {
	for i := range t.Data {
		t.Data[i] = float32(i%13)/13 - 0.5
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkKernel_BehavioralVsLUTForward compares the two
// forward-simulation styles the paper discusses: LUT-based ([9]-[11],
// what this framework uses) versus behavioral evaluation of the
// multiplier function per MAC ([12]).
func BenchmarkKernel_BehavioralVsLUTForward(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_2NDH")
	grads := gradient.STE(8)
	x := tensor.New(2, 8, 12, 12)
	fill(x)
	run := func(b *testing.B, op *nn.Op) {
		layer := nn.NewApproxConv2D("c", 8, 16, 3, 1, 1, op, newRng(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = layer.Forward(x, true)
		}
	}
	b.Run("lut", func(b *testing.B) { run(b, nn.NewOp(e.Mult, grads)) })
	b.Run("behavioral", func(b *testing.B) { run(b, nn.BehavioralOp(e.Mult, grads)) })
}

// BenchmarkKernel_ReductionArchitectures characterizes the two
// multiplier reduction topologies (column compression vs. row ripple)
// at equal function.
func BenchmarkKernel_ReductionArchitectures(b *testing.B) {
	lib := tech.ASAP7()
	mask := mulsynth.TruncMask(8, 8)
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := mulsynth.Build("c", mask, 0)
			_ = n.Analyze(lib, circuit.PowerOptions{Vectors: 64, Seed: 1})
		}
	})
	b.Run("ripple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := mulsynth.BuildRipple("r", mask, 0)
			_ = n.Analyze(lib, circuit.PowerOptions{Vectors: 64, Seed: 1})
		}
	})
}

// BenchmarkKernel_FaultSensitivity measures the stuck-at criticality
// sweep over a 5-bit accurate multiplier.
func BenchmarkKernel_FaultSensitivity(b *testing.B) {
	n := mulsynth.BuildAccurate("acc5", 5)
	for i := 0; i < b.N; i++ {
		_ = mulsynth.FaultSensitivity(n, 5, 256, 1)
	}
}

// BenchmarkAblation_PerChannelQuant compares the forward cost of
// per-tensor vs per-channel weight quantization on the approximate
// convolution (the accuracy side is cmd/ablate -which perchannel).
func BenchmarkAblation_PerChannelQuant(b *testing.B) {
	e, _ := appmult.Lookup("mul8u_rm8")
	op := nn.STEOp(e.Mult)
	x := tensor.New(2, 8, 12, 12)
	fill(x)
	run := func(b *testing.B, pc bool) {
		layer := nn.NewApproxConv2D("c", 8, 16, 3, 1, 1, op, newRng(1))
		layer.PerChannel = pc
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = layer.Forward(x, true)
		}
	}
	b.Run("pertensor", func(b *testing.B) { run(b, false) })
	b.Run("perchannel", func(b *testing.B) { run(b, true) })
}
