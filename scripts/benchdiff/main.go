// Command benchdiff compares two BENCH_kernels.json recordings (see
// cmd/benchkernels) and exits nonzero when any benchmark regressed
// beyond the tolerance — the loud-failure half of the benchmark
// harness. `make bench` runs it blocking against the committed
// baseline; `make verify` runs it as a non-blocking report.
//
// Usage:
//
//	benchdiff [-tol 1.3] [-check-names] old.json new.json
//
// By default a benchmark present in only one file is reported but never
// fails the diff, so the harness survives adding or retiring
// benchmarks. With -check-names any name-set mismatch is fatal: that is
// the CI mode that catches a benchmark added (or retired) in
// cmd/benchkernels without the committed BENCH_kernels.json being
// regenerated alongside it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type record struct {
	Benchmarks map[string]result `json:"benchmarks"`
}

func load(path string) (record, error) {
	var r record
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	tol := flag.Float64("tol", 1.3, "fail when new ns/op exceeds old by more than this factor")
	checkNames := flag.Bool("check-names", false,
		"fail when the baseline and new recordings do not cover the same benchmark names")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 1.3] [-check-names] old.json new.json")
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if os.IsNotExist(err) {
		// First run: there is nothing to regress against. Exit zero so
		// the harness's promotion step installs the new recording as the
		// baseline for the next diff.
		fmt.Printf("benchdiff: no baseline at %s, promoting %d benchmark(s) from %s\n",
			flag.Arg(0), len(newRec.Benchmarks), flag.Arg(1))
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRec.Benchmarks))
	for name := range oldRec.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed, mismatched := 0, 0
	for _, name := range names {
		o := oldRec.Benchmarks[name]
		n, ok := newRec.Benchmarks[name]
		if !ok {
			fmt.Printf("%-28s retired (only in %s)\n", name, flag.Arg(0))
			mismatched++
			continue
		}
		ratio := n.NsOp / o.NsOp
		status := "ok"
		if ratio > *tol {
			status = "REGRESSION"
			regressed++
		}
		fmt.Printf("%-28s %12.0f -> %12.0f ns/op  %5.2fx  %s\n", name, o.NsOp, n.NsOp, ratio, status)
		if n.AllocsOp > o.AllocsOp {
			fmt.Printf("%-28s allocs/op grew %d -> %d\n", name, o.AllocsOp, n.AllocsOp)
		}
	}
	for name := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[name]; !ok {
			fmt.Printf("%-28s new (no baseline)\n", name)
			mismatched++
		}
	}
	if *checkNames && mismatched > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark name(s) differ between %s and %s — regenerate the baseline with `make bench`\n",
			mismatched, flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.2fx\n", regressed, *tol)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
