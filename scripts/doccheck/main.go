// Command doccheck enforces the repo's godoc contract: every exported
// identifier in the packages given on the command line must carry a
// doc comment, and every package must have a package comment. It is a
// deliberately small revive/golint stand-in — no dependency, no
// configuration — wired into `make verify`.
//
//	go run ./scripts/doccheck ./internal/serve ./internal/nn
//
// Test files are exempt. Methods count: an exported method on any
// receiver needs a comment, and so does every exported method listed
// in an exported interface (the interface is the contract — its method
// set is where implementers read the semantics, e.g. every
// gradient.GradEstimator method). Grouped declarations accept either a
// comment on the group or one on the individual spec.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck ./pkg/dir [./pkg/dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		probs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, p := range probs {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (non-test files only) and
// returns a "file:line: message" problem per undocumented export.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var probs []string
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", filepath.ToSlash(p.Filename), p.Line)
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// Anchor the problem to the first file alphabetically so
			// the message is stable across runs.
			first := ""
			for name := range pkg.Files {
				if first == "" || name < first {
					first = name
				}
			}
			probs = append(probs, fmt.Sprintf("%s:1: package %s has no package comment",
				filepath.ToSlash(first), pkg.Name))
		}
		for _, f := range pkg.Files {
			probs = append(probs, checkFile(f, pos)...)
		}
	}
	return probs, nil
}

// receiverExported reports whether a function is package-level or a
// method on an exported type. Methods on unexported receivers never
// appear in godoc, so they are exempt (matching golint).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkFile walks one file's top-level declarations.
func checkFile(f *ast.File, pos func(ast.Node) string) []string {
	var probs []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				probs = append(probs, fmt.Sprintf("%s: exported %s %s has no doc comment",
					pos(d), kind, d.Name.Name))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						probs = append(probs, fmt.Sprintf("%s: exported type %s has no doc comment",
							pos(s), s.Name.Name))
					}
					if s.Name.IsExported() {
						probs = append(probs, checkInterface(s, pos)...)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							probs = append(probs, fmt.Sprintf("%s: exported %s %s has no doc comment",
								pos(s), strings.ToLower(d.Tok.String()), name.Name))
						}
					}
				}
			}
		}
	}
	return probs
}

// checkInterface requires a doc comment on every exported method of an
// exported interface type. Embedded interfaces (no Names) are skipped:
// their methods are documented at their own declaration site.
func checkInterface(s *ast.TypeSpec, pos func(ast.Node) string) []string {
	iface, ok := s.Type.(*ast.InterfaceType)
	if !ok || iface.Methods == nil {
		return nil
	}
	var probs []string
	for _, m := range iface.Methods.List {
		if len(m.Names) == 0 || m.Doc != nil {
			continue
		}
		for _, name := range m.Names {
			if name.IsExported() {
				probs = append(probs, fmt.Sprintf("%s: interface %s: method %s has no doc comment",
					pos(m), s.Name.Name, name.Name))
			}
		}
	}
	return probs
}
